"""The discrepancy corpus: minimized disagreements, persisted and replayable.

Every discrepancy that survives shrinking is written under
``difftest-corpus/`` as one self-contained JSON document::

    {
      "schema": 1,
      "seed": 137,
      "direction": "static-fn",          # or "static-fp"
      "error_class": "use-after-free",
      "detail": "...human-readable summary...",
      "scenario": "scenario_0_1",        # the oracle entry point
      "planted": {...} | null,           # PlantedBug ground truth
      "window": ["  rec0 head = ...", ...],
      "files": {"util.h": "...", ...},   # the full minimized program
      "expected": {
        "static_classes": {"use-after-free": 1, ...},
        "static_window_hit": false,
        "oracle_classes": ["use-after-free"]
      }
    }

``replay_case`` re-runs both detectors on the stored files and checks
the verdicts against ``expected`` — bit-for-bit reproducibility is the
point: a corpus case is a pinned regression test for the exact
disagreement it records.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from .mutations import PlantedBug, Variant
from .runner import DualRunner
from .verdict import Discrepancy

DEFAULT_CORPUS_DIR = "difftest-corpus"
SCHEMA_VERSION = 1


@dataclass
class CorpusCase:
    seed: int
    direction: str
    error_class: str
    detail: str
    scenario: str
    window: tuple[str, ...]
    files: dict[str, str]
    planted: PlantedBug | None
    expected_static_classes: dict[str, int]
    expected_static_window_hit: bool
    expected_oracle_classes: tuple[str, ...]
    path: str | None = None

    @property
    def name(self) -> str:
        return f"case-{self.seed:06d}-{self.error_class}-{self.direction}"

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "seed": self.seed,
            "direction": self.direction,
            "error_class": self.error_class,
            "detail": self.detail,
            "scenario": self.scenario,
            "planted": self.planted.to_dict() if self.planted else None,
            "window": list(self.window),
            "files": dict(sorted(self.files.items())),
            "expected": {
                "static_classes": dict(
                    sorted(self.expected_static_classes.items())
                ),
                "static_window_hit": self.expected_static_window_hit,
                "oracle_classes": sorted(self.expected_oracle_classes),
            },
        }

    @staticmethod
    def from_dict(data: dict, path: str | None = None) -> "CorpusCase":
        if data.get("schema") != SCHEMA_VERSION:
            raise CorpusError(
                f"unsupported corpus schema {data.get('schema')!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        expected = data["expected"]
        return CorpusCase(
            seed=int(data["seed"]),
            direction=data["direction"],
            error_class=data["error_class"],
            detail=data.get("detail", ""),
            scenario=data["scenario"],
            window=tuple(data.get("window", [])),
            files=dict(data["files"]),
            planted=(
                PlantedBug.from_dict(data["planted"])
                if data.get("planted") else None
            ),
            expected_static_classes={
                str(k): int(v)
                for k, v in expected.get("static_classes", {}).items()
            },
            expected_static_window_hit=bool(
                expected.get("static_window_hit", False)
            ),
            expected_oracle_classes=tuple(
                expected.get("oracle_classes", [])
            ),
            path=path,
        )


class CorpusError(Exception):
    pass


def case_from_shrunk(
    variant: Variant,
    discrepancy: Discrepancy,
    runner: DualRunner,
) -> CorpusCase:
    """Freeze a minimized variant's verdicts into a corpus case."""
    static = runner.check_static(variant)
    oracle = runner.run_scenario(variant, variant.target)
    return CorpusCase(
        seed=variant.seed,
        direction=discrepancy.direction,
        error_class=discrepancy.error_class,
        detail=discrepancy.detail,
        scenario=variant.target,
        window=tuple(variant.window_lines),
        files=dict(variant.files),
        planted=variant.planted,
        expected_static_classes={
            k: v for k, v in sorted(static.classes.items())
        },
        expected_static_window_hit=static.window_hit,
        expected_oracle_classes=tuple(oracle.event_classes),
    )


def save_case(case: CorpusCase, corpus_dir: str) -> str:
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, f"{case.name}.json")
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(case.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    case.path = path
    return path


def load_case(path: str) -> CorpusCase:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CorpusError(f"cannot load corpus case {path}: {exc}") from exc
    return CorpusCase.from_dict(data, path=path)


def load_corpus(corpus_dir: str) -> list[CorpusCase]:
    if not os.path.isdir(corpus_dir):
        return []
    cases = []
    for name in sorted(os.listdir(corpus_dir)):
        if name.endswith(".json"):
            cases.append(load_case(os.path.join(corpus_dir, name)))
    return cases


@dataclass
class ReplayReport:
    case: CorpusCase
    reproduced: bool
    problems: list[str] = field(default_factory=list)

    def render(self) -> str:
        status = "reproduced" if self.reproduced else "DIVERGED"
        lines = [f"{self.case.name}: {status} — {self.case.detail}"]
        for problem in self.problems:
            lines.append(f"   {problem}")
        return "\n".join(lines)


def replay_case(case: CorpusCase, runner: DualRunner) -> ReplayReport:
    """Re-run both detectors on the stored program; compare verdicts."""
    variant = Variant(
        seed=case.seed,
        files=dict(case.files),
        scenarios=[case.scenario],
        target=case.scenario,
        planted=case.planted,
        window_lines=case.window,
    )
    problems: list[str] = []
    static = runner.check_static(variant)
    if static.classes != case.expected_static_classes:
        problems.append(
            f"static classes changed: expected "
            f"{case.expected_static_classes}, got {static.classes}"
        )
    if static.window_hit != case.expected_static_window_hit:
        problems.append(
            f"static window hit changed: expected "
            f"{case.expected_static_window_hit}, got {static.window_hit}"
        )
    oracle = runner.run_scenario(variant, case.scenario)
    if oracle.failure is not None:
        problems.append(f"oracle failed: {oracle.failure}")
    elif tuple(oracle.event_classes) != tuple(case.expected_oracle_classes):
        problems.append(
            f"oracle classes changed: expected "
            f"{list(case.expected_oracle_classes)}, got "
            f"{oracle.event_classes}"
        )
    return ReplayReport(case=case, reproduced=not problems, problems=problems)
