"""Discrepancy shrinking: ddmin over the mutation's statement window.

When the static checker disagrees with observed ground truth, the
campaign minimizes the variant before persisting it: classic
delta-debugging (Zeller's ddmin) over the lines of the spliced
statement window, where a candidate is *interesting* iff the same
discrepancy — same class, same direction — still holds after the
reduction:

* ``static-fn``: the instrumented heap still observes the planted
  class when the target scenario runs, and the static checker still
  emits no witnessing message in the window.
* ``static-fp``: the static checker still claims the class, and the
  instrumented heap still observes nothing of the kind.

Candidates that no longer parse, or that the oracle can no longer
execute, are uninteresting by construction — the predicate demands a
clean parse and a completed oracle run, so shrinking can never "succeed"
by destroying the program.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mutations import MutationEngine, Variant
from .runner import DualRunner
from .verdict import CORROBORATED_BY, STATIC_EQUIVALENTS, Discrepancy


@dataclass
class ShrinkResult:
    variant: Variant            # the minimized variant
    window: tuple[str, ...]     # its statement window
    probes: int                 # interesting-predicate evaluations
    reduced: bool               # did any reduction hold?


def _still_discrepant(
    runner: DualRunner,
    variant: Variant,
    discrepancy: Discrepancy,
) -> bool:
    static = runner.check_static(variant)
    if static.parse_errors or static.internal_errors:
        return False
    oracle = runner.run_scenario(variant, variant.target)
    if oracle.failure is not None:
        return False
    observed = set(oracle.event_classes)
    cls = discrepancy.error_class
    if discrepancy.direction == "static-fn":
        if not (STATIC_EQUIVALENTS[cls] & observed):
            return False          # the bug itself shrank away
        return not static.window_hit
    if discrepancy.direction == "static-fp":
        if CORROBORATED_BY[cls] & observed:
            return False          # the claim became true
        return cls in static.classes
    raise ValueError(f"unknown discrepancy direction {discrepancy.direction!r}")


def shrink_discrepancy(
    engine: MutationEngine,
    runner: DualRunner,
    variant: Variant,
    discrepancy: Discrepancy,
    max_probes: int = 200,
) -> ShrinkResult:
    """Minimize *variant*'s statement window while the discrepancy holds."""
    window = list(variant.window_lines)
    probes = 0
    reduced = False

    def interesting(candidate: list[str]) -> bool:
        nonlocal probes
        if probes >= max_probes:
            return False
        probes += 1
        rebuilt = engine.rebuild_variant(variant, candidate)
        return _still_discrepant(runner, rebuilt, discrepancy)

    # ddmin: try removing chunks at decreasing granularity.
    chunks = 2
    while len(window) >= 2:
        size = max(1, len(window) // chunks)
        removed_any = False
        start = 0
        while start < len(window):
            candidate = window[:start] + window[start + size:]
            if candidate and interesting(candidate):
                window = candidate
                reduced = True
                removed_any = True
                chunks = max(chunks - 1, 2)
                # restart scan at the same offset against the new window
            else:
                start += size
        if removed_any:
            continue
        if size == 1:
            break
        chunks = min(len(window), chunks * 2)
        if probes >= max_probes:
            break

    final = engine.rebuild_variant(variant, window)
    return ShrinkResult(
        variant=final, window=tuple(window), probes=probes, reduced=reduced
    )
