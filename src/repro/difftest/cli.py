"""The ``difftest`` subcommand: differential fault injection from the shell.

::

    repro difftest [--seeds N] [--jobs N] [--coverage F]
                   [--corpus DIR | --no-corpus] [--max-steps N]
                   [--no-shrink] [--metrics-out FILE] [-flag | +flag ...]
    repro difftest --replay [PATH | all] [--corpus DIR]

Campaign mode generates N seeded variants, runs the static checker and
the instrumented-heap oracle over each, prints the per-class TP/FP/FN
comparison table, and shrinks + persists every static/ground-truth
disagreement under the corpus directory.

Replay mode re-runs persisted minimized cases (one file, or every
``*.json`` in the corpus) and verifies both detectors still produce the
recorded verdicts.

``--metrics-out FILE`` writes a JSON dump of the metrics registry after
the campaign (variant/discrepancy counts, per-detector verdict totals).

Exit codes extend the driver's contract:

    0   campaign finished with no surviving discrepancy / all replays
        reproduced
    1   at least one static FN/FP survived shrinking (it was minimized
        and persisted), or a replay diverged from its recording
    2   usage error
"""

from __future__ import annotations

import sys

from ..flags.registry import Flags, UnknownFlag
from .campaign import CampaignConfig, run_campaign
from .corpus import (
    DEFAULT_CORPUS_DIR,
    CorpusError,
    load_case,
    load_corpus,
    replay_case,
)
from .runner import DualRunner

USAGE = __doc__ or ""

EXIT_OK = 0
EXIT_DISCREPANT = 1
EXIT_USAGE = 2


class DifftestCliError(Exception):
    pass


def _int_arg(name: str, value: str, minimum: int = 1) -> int:
    try:
        out = int(value)
    except ValueError:
        raise DifftestCliError(
            f"{name} expects an integer, got {value!r}"
        ) from None
    if out < minimum:
        raise DifftestCliError(f"{name} expects a value >= {minimum}")
    return out


def _float_arg(name: str, value: str) -> float:
    try:
        out = float(value)
    except ValueError:
        raise DifftestCliError(
            f"{name} expects a number, got {value!r}"
        ) from None
    if not 0.0 <= out <= 1.0:
        raise DifftestCliError(f"{name} expects a value in [0, 1]")
    return out


def parse_args(argv: list[str]) -> dict:
    opts = {
        "seeds": 50,
        "jobs": 1,
        "coverage": 0.5,
        "corpus": DEFAULT_CORPUS_DIR,
        "max_steps": 200_000,
        "shrink": True,
        "flag_args": [],
        "replay": None,        # None | 'all' | path
        "quiet": False,
        "metrics_out": None,
    }
    i = 0
    while i < len(argv):
        arg = argv[i]

        def _value(name: str) -> str:
            nonlocal i
            i += 1
            if i >= len(argv):
                raise DifftestCliError(f"{name} requires an argument")
            return argv[i]

        if arg in ("-h", "--help", "-help"):
            opts["help"] = True
            return opts
        if arg == "--seeds":
            opts["seeds"] = _int_arg("--seeds", _value("--seeds"))
        elif arg.startswith("--seeds="):
            opts["seeds"] = _int_arg("--seeds", arg.split("=", 1)[1])
        elif arg in ("--jobs", "-j"):
            opts["jobs"] = _int_arg("--jobs", _value("--jobs"))
        elif arg.startswith("--jobs="):
            opts["jobs"] = _int_arg("--jobs", arg.split("=", 1)[1])
        elif arg == "--coverage":
            opts["coverage"] = _float_arg("--coverage", _value("--coverage"))
        elif arg.startswith("--coverage="):
            opts["coverage"] = _float_arg("--coverage", arg.split("=", 1)[1])
        elif arg == "--max-steps":
            opts["max_steps"] = _int_arg("--max-steps", _value("--max-steps"))
        elif arg.startswith("--max-steps="):
            opts["max_steps"] = _int_arg("--max-steps", arg.split("=", 1)[1])
        elif arg == "--corpus":
            opts["corpus"] = _value("--corpus")
        elif arg.startswith("--corpus="):
            opts["corpus"] = arg.split("=", 1)[1]
        elif arg == "--no-corpus":
            opts["corpus"] = None
        elif arg == "--metrics-out":
            opts["metrics_out"] = _value("--metrics-out")
        elif arg.startswith("--metrics-out="):
            opts["metrics_out"] = arg.split("=", 1)[1]
        elif arg == "--no-shrink":
            opts["shrink"] = False
        elif arg == "--replay":
            # optional operand: a path, or 'all' (default)
            if i + 1 < len(argv) and not argv[i + 1].startswith(("-", "+")):
                i += 1
                opts["replay"] = argv[i]
            else:
                opts["replay"] = "all"
        elif arg == "--quiet":
            opts["quiet"] = True
        elif arg.startswith(("-", "+")) and len(arg) > 1:
            opts["flag_args"].append(arg)   # checker flag passthrough
        else:
            raise DifftestCliError(f"unexpected argument {arg!r}")
        i += 1
    return opts


def _validate_flags(flag_args: list[str]) -> None:
    try:
        Flags.from_args(flag_args)
    except UnknownFlag as exc:
        raise DifftestCliError(str(exc)) from exc


def run_difftest(argv: list[str]) -> tuple[int, str]:
    """Run the subcommand; returns (exit_status, output_text)."""
    opts = parse_args(argv)
    if opts.get("help"):
        return EXIT_OK, USAGE
    _validate_flags(opts["flag_args"])

    if opts["replay"] is not None:
        return _run_replay(opts)

    config = CampaignConfig(
        seeds=opts["seeds"],
        jobs=opts["jobs"],
        coverage=opts["coverage"],
        max_steps=opts["max_steps"],
        flag_args=tuple(opts["flag_args"]),
        corpus_dir=opts["corpus"],
        shrink=opts["shrink"],
    )
    out: list[str] = []
    progress = None if opts["quiet"] else out.append
    result = run_campaign(config, progress=progress)
    out.append(result.render())
    if opts["metrics_out"] is not None:
        from ..obs.metrics import GLOBAL_METRICS

        GLOBAL_METRICS.dump_json(opts["metrics_out"])
    return (
        EXIT_OK if result.clean_exit else EXIT_DISCREPANT,
        "\n".join(out),
    )


def _run_replay(opts: dict) -> tuple[int, str]:
    runner = DualRunner(
        flags=(
            Flags.from_args(opts["flag_args"])
            if opts["flag_args"] else None
        ),
        max_steps=opts["max_steps"],
    )
    try:
        if opts["replay"] == "all":
            cases = load_corpus(opts["corpus"] or DEFAULT_CORPUS_DIR)
            if not cases:
                return EXIT_OK, (
                    f"no corpus cases under "
                    f"{opts['corpus'] or DEFAULT_CORPUS_DIR}/"
                )
        else:
            cases = [load_case(opts["replay"])]
    except CorpusError as exc:
        raise DifftestCliError(str(exc)) from exc
    reports = [replay_case(case, runner) for case in cases]
    out = [report.render() for report in reports]
    failed = sum(1 for r in reports if not r.reproduced)
    out.append(
        f"{len(reports) - failed}/{len(reports)} case(s) reproduced"
    )
    return (EXIT_DISCREPANT if failed else EXIT_OK), "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        status, output = run_difftest(args)
    except DifftestCliError as exc:
        print(f"repro difftest: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if output:
        print(output)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
