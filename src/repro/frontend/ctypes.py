"""Representation of C types.

The analysis needs types for three things: deciding which expressions are
pointers (null / allocation checking applies only to pointers), walking
struct fields to decide whether storage is *completely defined* (paper
section 3), and enforcing the outer-level annotation rule (an annotation
on ``char **x`` constrains ``x``, not ``*x``; a typedef can push
annotations to inner levels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..annotations.kinds import AnnotationSet


class CType:
    """Base class for all C types."""

    qualifiers: frozenset[str] = frozenset()

    def is_pointer(self) -> bool:
        return False

    def is_function(self) -> bool:
        return False

    def is_aggregate(self) -> bool:
        return False

    def unqualified(self) -> "CType":
        return self

    def pointee(self) -> Optional["CType"]:
        return None


@dataclass(frozen=True)
class Primitive(CType):
    """A built-in scalar type (``int``, ``unsigned long``, ``double``...)."""

    name: str  # canonical spelling, e.g. 'unsigned int', 'void', 'char'
    qualifiers: frozenset[str] = frozenset()

    def __str__(self) -> str:
        return _qual_str(self.qualifiers) + self.name

    @property
    def is_void(self) -> bool:
        return self.name == "void"

    @property
    def is_integral(self) -> bool:
        return self.name not in ("void", "float", "double", "long double")


VOID = Primitive("void")
INT = Primitive("int")
CHAR = Primitive("char")
UNSIGNED_INT = Primitive("unsigned int")
SIZE_T = Primitive("unsigned long")
DOUBLE = Primitive("double")
BOOL = Primitive("int")  # C89 has no bool; LCL's bool maps to int


# -- interning ---------------------------------------------------------------
#
# A cold parse builds the same handful of scalar and pointer types tens of
# thousands of times. Primitive and Pointer are frozen with structural
# equality, so sharing one object per distinct shape is observationally
# identical while making equality checks pointer comparisons and skipping
# the dataclass constructor on every hit. Mutable types (struct/enum/
# function) are identity-hashed and must NOT be interned.

_PRIMITIVE_INTERN: dict[tuple, "Primitive"] = {}
_POINTER_INTERN: dict[tuple, "Pointer"] = {}

#: Growth bound for the pointer table: pointee types include per-unit
#: struct objects, so a long-lived daemon process would otherwise
#: accumulate entries forever. Interning is only an accelerator — on
#: overflow the table resets and repopulates with the live working set.
_POINTER_INTERN_CAP = 8192


def make_primitive(
    name: str, qualifiers: frozenset[str] = frozenset()
) -> "Primitive":
    """Interned constructor for :class:`Primitive`."""
    key = (name, qualifiers)
    cached = _PRIMITIVE_INTERN.get(key)
    if cached is None:
        cached = _PRIMITIVE_INTERN[key] = Primitive(name, qualifiers)
    return cached


def make_pointer(
    to: CType, qualifiers: frozenset[str] = frozenset()
) -> "Pointer":
    """Interned constructor for :class:`Pointer`.

    Keyed by pointee identity (mutable pointees compare by identity
    anyway; for frozen pointees identity-sharing is what interning their
    own constructors guarantees), so lookups never recurse into type
    structure.
    """
    key = (id(to), qualifiers)
    cached = _POINTER_INTERN.get(key)
    if cached is None:
        if len(_POINTER_INTERN) >= _POINTER_INTERN_CAP:
            _POINTER_INTERN.clear()
        cached = _POINTER_INTERN[key] = Pointer(to, qualifiers)
    return cached


for _prim in (VOID, INT, CHAR, UNSIGNED_INT, SIZE_T, DOUBLE):
    _PRIMITIVE_INTERN[(_prim.name, _prim.qualifiers)] = _prim
del _prim


@dataclass(frozen=True)
class Pointer(CType):
    to: CType
    qualifiers: frozenset[str] = frozenset()

    def is_pointer(self) -> bool:
        return True

    def pointee(self) -> CType:
        return self.to

    def __str__(self) -> str:
        return f"{self.to} *{_qual_str(self.qualifiers).strip()}"


@dataclass(frozen=True)
class Array(CType):
    of: CType
    size: int | None = None

    def is_pointer(self) -> bool:
        # Arrays decay to pointers in nearly every analysis context.
        return False

    def pointee(self) -> CType:
        return self.of

    def __str__(self) -> str:
        dim = "" if self.size is None else str(self.size)
        return f"{self.of} [{dim}]"


@dataclass(frozen=True)
class FieldDecl:
    name: str
    ctype: CType
    annotations: "AnnotationSet"


@dataclass
class StructType(CType):
    """A struct or union. Mutable because the definition may follow uses."""

    tag: str | None
    is_union: bool = False
    fields: list[FieldDecl] | None = None  # None until defined

    def is_aggregate(self) -> bool:
        return True

    @property
    def is_complete(self) -> bool:
        return self.fields is not None

    def field_named(self, name: str) -> FieldDecl | None:
        for fld in self.fields or []:
            if fld.name == name:
                return fld
        return None

    def __str__(self) -> str:
        kw = "union" if self.is_union else "struct"
        return f"{kw} {self.tag or '<anonymous>'}"

    def __hash__(self) -> int:  # identity-hashed: tags may be reused across files
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass
class EnumType(CType):
    tag: str | None
    enumerators: dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"enum {self.tag or '<anonymous>'}"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass(frozen=True)
class ParamType:
    name: str | None
    ctype: CType
    annotations: "AnnotationSet"
    location: object = field(default=None, compare=False)  # frontend Location


@dataclass
class FunctionType(CType):
    ret: CType
    params: list[ParamType] = field(default_factory=list)
    variadic: bool = False
    old_style: bool = False  # empty parameter list '()'

    def is_function(self) -> bool:
        return True

    def __str__(self) -> str:
        inner = ", ".join(str(p.ctype) for p in self.params)
        if self.variadic:
            inner += ", ..." if inner else "..."
        return f"{self.ret} ({inner})"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass(frozen=True)
class TypedefType(CType):
    """A named type alias. Annotations on the typedef apply to all uses."""

    name: str
    actual: CType
    annotations: "AnnotationSet"

    def is_pointer(self) -> bool:
        return self.actual.is_pointer()

    def is_function(self) -> bool:
        return self.actual.is_function()

    def is_aggregate(self) -> bool:
        return self.actual.is_aggregate()

    def pointee(self) -> CType | None:
        return self.actual.pointee()

    def __str__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(self.name) ^ id(self.actual)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TypedefType)
            and other.name == self.name
            and other.actual is self.actual
        )


def _qual_str(quals: frozenset[str]) -> str:
    return "".join(q + " " for q in sorted(quals))


def strip_typedefs(ctype: CType) -> CType:
    """Resolve typedef aliases down to the underlying type."""
    seen = 0
    while isinstance(ctype, TypedefType):
        ctype = ctype.actual
        seen += 1
        if seen > 64:  # defensive: malformed recursive typedef
            break
    return ctype


def is_pointerish(ctype: CType) -> bool:
    """True for pointers and arrays (things with derivable storage)."""
    actual = strip_typedefs(ctype)
    return isinstance(actual, (Pointer, Array))


def pointee_type(ctype: CType) -> CType | None:
    actual = strip_typedefs(ctype)
    if isinstance(actual, (Pointer, Array)):
        return actual.pointee()
    return None


def struct_fields(ctype: CType) -> list[FieldDecl]:
    """Fields of a struct type (empty if not a complete struct)."""
    actual = strip_typedefs(ctype)
    if isinstance(actual, StructType) and actual.fields is not None:
        return actual.fields
    return []


def add_qualifier(ctype: CType, qual: str) -> CType:
    if isinstance(ctype, Primitive):
        return make_primitive(ctype.name, ctype.qualifiers | {qual})
    if isinstance(ctype, Pointer):
        return make_pointer(ctype.to, ctype.qualifiers | {qual})
    return ctype  # qualifiers on aggregates don't affect the analysis
