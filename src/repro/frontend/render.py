"""Render AST expressions back to C-like text for messages.

LCLint messages quote the offending code ("Only storage gname not
released before assignment: gname = pname"), so the checker needs a
compact expression printer. Output favours readability over exact
round-tripping (redundant parentheses are dropped where precedence
allows).
"""

from __future__ import annotations

from . import cast as A

_PRECEDENCE = {
    ",": 1, "=": 2, "?:": 3, "||": 4, "&&": 5, "|": 6, "^": 7, "&": 8,
    "==": 9, "!=": 9, "<": 10, ">": 10, "<=": 10, ">=": 10,
    "<<": 11, ">>": 11, "+": 12, "-": 12, "*": 13, "/": 13, "%": 13,
    "unary": 14, "postfix": 15, "primary": 16,
}


def render_expr(expr: A.Expr) -> str:
    text, _ = _render(expr)
    return text


def _parenthesize(text: str, prec: int, minimum: int) -> str:
    return f"({text})" if prec < minimum else text


def _render(expr: A.Expr) -> tuple[str, int]:
    if isinstance(expr, A.Ident):
        return expr.name, _PRECEDENCE["primary"]
    if isinstance(expr, A.IntLit):
        return expr.spelling or str(expr.value), _PRECEDENCE["primary"]
    if isinstance(expr, A.FloatLit):
        return expr.spelling or str(expr.value), _PRECEDENCE["primary"]
    if isinstance(expr, A.CharLit):
        return expr.spelling or f"'{chr(expr.value)}'", _PRECEDENCE["primary"]
    if isinstance(expr, A.StringLit):
        return expr.spelling or f'"{expr.value}"', _PRECEDENCE["primary"]
    if isinstance(expr, A.Member):
        inner, prec = _render(expr.obj)
        op = "->" if expr.arrow else "."
        base = _parenthesize(inner, prec, _PRECEDENCE["postfix"])
        return f"{base}{op}{expr.fieldname}", _PRECEDENCE["postfix"]
    if isinstance(expr, A.Index):
        inner, prec = _render(expr.array)
        base = _parenthesize(inner, prec, _PRECEDENCE["postfix"])
        return f"{base}[{render_expr(expr.index)}]", _PRECEDENCE["postfix"]
    if isinstance(expr, A.Call):
        inner, prec = _render(expr.func)
        base = _parenthesize(inner, prec, _PRECEDENCE["postfix"])
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"{base}({args})", _PRECEDENCE["postfix"]
    if isinstance(expr, A.Unary):
        if expr.op in ("p++", "p--"):
            inner, prec = _render(expr.operand)
            base = _parenthesize(inner, prec, _PRECEDENCE["postfix"])
            return f"{base}{expr.op[1:]}", _PRECEDENCE["postfix"]
        inner, prec = _render(expr.operand)
        base = _parenthesize(inner, prec, _PRECEDENCE["unary"])
        # Avoid token gluing: '-' before '-0' must not print as '--0'
        # (pre-decrement), '&' before '&x' as '&&x', etc.
        sep = " " if base and base[0] == expr.op[-1] else ""
        return f"{expr.op}{sep}{base}", _PRECEDENCE["unary"]
    if isinstance(expr, A.Binary):
        my_prec = _PRECEDENCE[expr.op]
        lhs, lp = _render(expr.lhs)
        rhs, rp = _render(expr.rhs)
        left = _parenthesize(lhs, lp, my_prec)
        right = _parenthesize(rhs, rp, my_prec + 1)
        return f"{left} {expr.op} {right}", my_prec
    if isinstance(expr, A.Assign):
        lhs, lp = _render(expr.target)
        rhs, rp = _render(expr.value)
        left = _parenthesize(lhs, lp, _PRECEDENCE["unary"])
        right = _parenthesize(rhs, rp, _PRECEDENCE["="])
        return f"{left} {expr.op} {right}", _PRECEDENCE["="]
    if isinstance(expr, A.Ternary):
        # The condition sits at logical-or level in the grammar, so a
        # nested conditional (or assignment/comma) there needs parens;
        # the else-branch is right-associative and does not.
        cond, cond_prec = _render(expr.cond)
        cond_text = _parenthesize(cond, cond_prec, _PRECEDENCE["?:"] + 1)
        other, other_prec = _render(expr.other)
        other_text = _parenthesize(other, other_prec, _PRECEDENCE["?:"])
        return (
            f"{cond_text} ? {render_expr(expr.then)} : {other_text}",
            _PRECEDENCE["?:"],
        )
    if isinstance(expr, A.Cast):
        inner, prec = _render(expr.operand)
        base = _parenthesize(inner, prec, _PRECEDENCE["unary"])
        return f"({expr.to_type}) {base}", _PRECEDENCE["unary"]
    if isinstance(expr, A.SizeofExpr):
        return f"sizeof({render_expr(expr.operand)})", _PRECEDENCE["unary"]
    if isinstance(expr, A.SizeofType):
        return f"sizeof({expr.of_type})", _PRECEDENCE["unary"]
    if isinstance(expr, A.Comma):
        return ", ".join(render_expr(e) for e in expr.exprs), _PRECEDENCE[","]
    if isinstance(expr, A.InitList):
        inner = ", ".join(render_expr(e) for e in expr.items)
        return "{" + inner + "}", _PRECEDENCE["primary"]
    return f"<{type(expr).__name__}>", _PRECEDENCE["primary"]
