"""C frontend: sources, preprocessing, lexing, parsing, types, symbols."""

from __future__ import annotations

from . import cast
from .lexer import (
    LexError,
    Lexer,
    ReferenceLexer,
    lexer_engine,
    reference_tokenize,
    tokenize,
)
from .parser import ParseError, Parser, parse_tokens
from .preprocessor import PreprocessError, Preprocessor
from .source import BUILTIN_LOCATION, Location, SourceFile, SourceManager
from .symtab import FunctionSignature, GlobalVariable, SymbolTable
from .tokens import Token, TokenKind

__all__ = [
    "cast",
    "LexError",
    "Lexer",
    "ReferenceLexer",
    "lexer_engine",
    "reference_tokenize",
    "tokenize",
    "ParseError",
    "Parser",
    "parse_tokens",
    "PreprocessError",
    "Preprocessor",
    "BUILTIN_LOCATION",
    "Location",
    "SourceFile",
    "SourceManager",
    "FunctionSignature",
    "GlobalVariable",
    "SymbolTable",
    "Token",
    "TokenKind",
    "parse_source",
]


def parse_source(
    text: str,
    name: str = "<string>",
    sources: SourceManager | None = None,
    defines: dict[str, str] | None = None,
    system_headers: dict[str, str] | None = None,
):
    """Preprocess and parse C source text into a translation unit.

    Returns ``(unit, control_tokens, annotation_problems)``.
    """
    manager = sources or SourceManager()
    pp = Preprocessor(manager, defines=defines, system_headers=system_headers)
    toks = pp.preprocess_text(text, name)
    parser = Parser(toks, name)
    unit = parser.parse_translation_unit()
    return unit, parser.controls, parser.problems
