"""A token-stream C preprocessor.

Supports the directive subset that the paper's programs (and the
reconstructed employee-database example) need: ``#include`` against a
:class:`~repro.frontend.source.SourceManager`, object-like and
function-like ``#define`` / ``#undef``, the full conditional family
(``#if`` / ``#ifdef`` / ``#ifndef`` / ``#elif`` / ``#else`` / ``#endif``)
with a constant-expression evaluator, and ``#error``. ``#pragma`` and
``#line`` are accepted and ignored.

Tokens keep their original source locations; tokens produced by macro
expansion carry the location of the macro *use*, which is where LCLint
reports anomalies detected inside macros (paper section 6 reports an
anomaly "in the macro definition of erc_choose" at its use site).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .lexer import Lexer, tokenize
from .source import Location, SourceFile, SourceManager
from .tokens import Token, TokenKind


class PreprocessError(Exception):
    def __init__(self, message: str, location: Location) -> None:
        super().__init__(f"{location}: {message}")
        self.location = location


@dataclass
class Macro:
    name: str
    params: list[str] | None  # None => object-like
    body: list[Token]
    variadic: bool = False


class _TokenCursor:
    """Sequential reader over a token list (no EOF sentinel required)."""

    def __init__(self, toks: list[Token]) -> None:
        self.toks = toks
        self.idx = 0

    def peek(self, ahead: int = 0) -> Token | None:
        idx = self.idx + ahead
        return self.toks[idx] if idx < len(self.toks) else None

    def next(self) -> Token | None:
        tok = self.peek()
        if tok is not None:
            self.idx += 1
        return tok

    def at_end(self) -> bool:
        return self.idx >= len(self.toks)


class Preprocessor:
    """Expand one entry file into a flat token stream."""

    MAX_INCLUDE_DEPTH = 64

    def __init__(
        self,
        sources: SourceManager,
        defines: dict[str, str] | None = None,
        system_headers: dict[str, str] | None = None,
        prelude_covered: frozenset[str] = frozenset(),
    ) -> None:
        self.sources = sources
        self.macros: dict[str, Macro] = {}
        self.system_headers = dict(system_headers or {})
        # System headers whose declarations the caller guarantees are
        # already in the program symbol table (the parsed prelude).
        # Including one is recorded for the include closure but splices
        # no tokens; see stdlib.specs.PRELUDE_COVERED_HEADERS.
        self.prelude_covered = prelude_covered
        self._included: set[str] = set()
        #: Seconds spent inside the lexer (profiling; cache hits cost 0).
        self.lex_s = 0.0
        for name, value in (defines or {}).items():
            body_src = SourceFile("<cmdline>", value)
            body = [t for t in tokenize(body_src) if t.kind is not TokenKind.EOF]
            self.macros[name] = Macro(name, None, body)

    # -- public entry points ----------------------------------------------

    def preprocess(self, name: str) -> list[Token]:
        """Preprocess the named source file into tokens (EOF appended)."""
        out = self._process_file(name, depth=0)
        eof_loc = out[-1].location if out else Location(name, 1, 1)
        out.append(Token(TokenKind.EOF, "", eof_loc))
        return out

    def preprocess_text(self, text: str, name: str = "<string>") -> list[Token]:
        self.sources.add(name, text)
        return self.preprocess(name)

    # -- file / line processing ---------------------------------------------

    def _resolve(self, header: str, angled: bool, loc: Location) -> str | None:
        import os

        if not angled:
            if self.sources.get(header) is not None:
                return header
            # relative to the including file (standard "..." semantics)
            sibling = os.path.join(os.path.dirname(loc.filename), header)
            if self.sources.get(sibling) is not None:
                return sibling
            if os.path.isfile(sibling):
                self.sources.load(sibling)
                return sibling
            if os.path.isfile(header):
                self.sources.load(header)
                return header
        if header in self.system_headers:
            synthetic = f"<{header}>"
            if self.sources.get(synthetic) is None:
                self.sources.add(synthetic, self.system_headers[header])
            return synthetic
        if self.sources.get(header) is not None:
            return header
        return None

    def _process_file(self, name: str, depth: int) -> list[Token]:
        if depth > self.MAX_INCLUDE_DEPTH:
            raise PreprocessError(
                f"include depth exceeds {self.MAX_INCLUDE_DEPTH}", Location(name, 1, 1)
            )
        source = self.sources.get(name)
        if source is None:
            source = self.sources.load(name)
        # Token lists are immutable; cache per source file so headers
        # included from several translation units lex only once.
        raw = getattr(source, "_token_cache", None)
        if raw is None:
            t0 = time.perf_counter()
            raw = [t for t in Lexer(source).tokens()
                   if t.kind is not TokenKind.EOF]
            self.lex_s += time.perf_counter() - t0
            source._token_cache = raw  # type: ignore[attr-defined]
        # Fast path: a file with no directives and no identifier naming a
        # defined macro passes through verbatim — no line splitting, no
        # expansion cursors. (Without directives the macro table cannot
        # change mid-file, so one up-front set-membership pregate is
        # sound.)
        macros = self.macros
        has_directive = False
        mentions_macro = False
        punct = TokenKind.PUNCT
        ident = TokenKind.IDENT
        for tok in raw:
            kind = tok.kind
            if kind is ident:
                if tok.value in macros:
                    mentions_macro = True
                    break
            elif kind is punct and tok.value == "#":
                has_directive = True
                break
        if not has_directive and not mentions_macro:
            return list(raw)
        lines = _split_lines(raw)
        out: list[Token] = []
        # Conditional stack entries: (taking, taken_any, seen_else).
        cond: list[list[bool]] = []

        for line in lines:
            if line and line[0].is_punct("#"):
                self._directive(line, out, cond, depth)
                continue
            if all(frame[0] for frame in cond):
                out.extend(self._expand(line))
        if cond:
            raise PreprocessError("unterminated conditional", lines[-1][0].location)
        return out

    def _directive(
        self,
        line: list[Token],
        out: list[Token],
        cond: list[list[bool]],
        depth: int,
    ) -> None:
        loc = line[0].location
        if len(line) == 1:
            return  # null directive
        head = line[1]
        name = head.value
        rest = line[2:]
        active = all(frame[0] for frame in cond)

        if name == "ifdef" or name == "ifndef":
            defined = bool(rest) and rest[0].value in self.macros
            value = defined if name == "ifdef" else not defined
            cond.append([active and value, active and value, False])
        elif name == "if":
            value = bool(self._eval_condition(rest, loc)) if active else False
            cond.append([active and value, active and value, False])
        elif name == "elif":
            if not cond:
                raise PreprocessError("#elif without #if", loc)
            frame = cond.pop()
            outer_active = all(f[0] for f in cond)
            if frame[2]:
                raise PreprocessError("#elif after #else", loc)
            if frame[1] or not outer_active:
                cond.append([False, frame[1], False])
            else:
                value = bool(self._eval_condition(rest, loc))
                cond.append([value, value, False])
        elif name == "else":
            if not cond:
                raise PreprocessError("#else without #if", loc)
            frame = cond.pop()
            outer_active = all(f[0] for f in cond)
            if frame[2]:
                raise PreprocessError("duplicate #else", loc)
            cond.append([outer_active and not frame[1], True, True])
        elif name == "endif":
            if not cond:
                raise PreprocessError("#endif without #if", loc)
            cond.pop()
        elif not active:
            return
        elif name == "define":
            self._define(rest, loc)
        elif name == "undef":
            if rest:
                self.macros.pop(rest[0].value, None)
        elif name == "include":
            self._include(rest, out, loc, depth)
        elif name == "error":
            text = " ".join(t.value for t in rest)
            raise PreprocessError(f"#error {text}", loc)
        elif name in ("pragma", "line"):
            return
        else:
            raise PreprocessError(f"unknown directive #{name}", loc)

    def _include(
        self, rest: list[Token], out: list[Token], loc: Location, depth: int
    ) -> None:
        if not rest:
            raise PreprocessError("#include expects a header name", loc)
        if rest[0].kind is TokenKind.STRING:
            header = rest[0].value[1:-1]
            angled = False
        elif rest[0].is_punct("<"):
            header = "".join(t.value for t in rest[1:-1])
            if not rest[-1].is_punct(">"):
                raise PreprocessError("malformed #include <...>", loc)
            angled = True
        else:
            raise PreprocessError("malformed #include", loc)
        resolved = self._resolve(header, angled, loc)
        if resolved is None:
            raise PreprocessError(f"cannot find include file {header!r}", loc)
        if resolved in self._included:
            return  # every include behaves as if guarded; headers here are interfaces
        self._included.add(resolved)
        if header in self.prelude_covered and resolved == f"<{header}>":
            return  # declarations already provided by the parsed prelude
        out.extend(self._process_file(resolved, depth + 1))

    def _define(self, rest: list[Token], loc: Location) -> None:
        if not rest or rest[0].kind is not TokenKind.IDENT:
            raise PreprocessError("#define expects an identifier", loc)
        name_tok = rest[0]
        cursor = 1
        params: list[str] | None = None
        variadic = False
        # Function-like only if '(' immediately follows the name (same column).
        if (
            cursor < len(rest)
            and rest[cursor].is_punct("(")
            and rest[cursor].location.line == name_tok.location.line
            and rest[cursor].location.column
            == name_tok.location.column + len(name_tok.value)
        ):
            params = []
            cursor += 1
            while cursor < len(rest) and not rest[cursor].is_punct(")"):
                tok = rest[cursor]
                if tok.is_punct("..."):
                    variadic = True
                elif tok.kind is TokenKind.IDENT:
                    params.append(tok.value)
                elif not tok.is_punct(","):
                    raise PreprocessError("malformed macro parameter list", loc)
                cursor += 1
            if cursor >= len(rest):
                raise PreprocessError("unterminated macro parameter list", loc)
            cursor += 1
        body = rest[cursor:]
        self.macros[name_tok.value] = Macro(name_tok.value, params, body, variadic)

    # -- macro expansion ----------------------------------------------------

    def _expand(self, toks: list[Token], banned: frozenset[str] = frozenset()) -> list[Token]:
        # Pregate: token runs that mention no expandable macro pass
        # through untouched (and un-copied) — the common case for almost
        # every line of real code.
        macros = self.macros
        ident = TokenKind.IDENT
        for tok in toks:
            if tok.kind is ident and tok.value in macros and tok.value not in banned:
                break
        else:
            return toks
        out: list[Token] = []
        i = 0
        size = len(toks)
        while i < size:
            tok = toks[i]
            i += 1
            if tok.kind is not ident or tok.value in banned:
                out.append(tok)
                continue
            macro = macros.get(tok.value)
            if macro is None:
                out.append(tok)
                continue
            if macro.params is None:
                body = [Token(t.kind, t.value, tok.location) for t in macro.body]
                out.extend(self._expand(body, banned | {macro.name}))
                continue
            if i >= size or not toks[i].is_punct("("):
                out.append(tok)  # function-like macro without args: plain ident
                continue
            args, i = self._collect_args(toks, i, tok.location)
            out.extend(self._substitute(macro, args, tok.location, banned))
        return out

    def _collect_args(
        self, toks: list[Token], i: int, loc: Location
    ) -> tuple[list[list[Token]], int]:
        i += 1  # consume '('
        args: list[list[Token]] = [[]]
        nesting = 0
        size = len(toks)
        while True:
            if i >= size:
                raise PreprocessError("unterminated macro argument list", loc)
            tok = toks[i]
            i += 1
            if tok.is_punct("(") or tok.is_punct("[") or tok.is_punct("{"):
                nesting += 1
                args[-1].append(tok)
            elif tok.is_punct(")") and nesting == 0:
                break
            elif tok.is_punct(")") or tok.is_punct("]") or tok.is_punct("}"):
                nesting -= 1
                args[-1].append(tok)
            elif tok.is_punct(",") and nesting == 0:
                args.append([])
            else:
                args[-1].append(tok)
        if args == [[]]:
            return [], i
        return args, i

    def _substitute(
        self,
        macro: Macro,
        args: list[list[Token]],
        use_loc: Location,
        banned: frozenset[str],
    ) -> list[Token]:
        params = macro.params or []
        if macro.variadic:
            fixed, rest = args[: len(params)], args[len(params) :]
            va: list[Token] = []
            for i, arg in enumerate(rest):
                if i:
                    va.append(Token(TokenKind.PUNCT, ",", use_loc))
                va.extend(arg)
            mapping = dict(zip(params, fixed))
            mapping["__VA_ARGS__"] = va
        else:
            if len(args) != len(params):
                raise PreprocessError(
                    f"macro {macro.name!r} expects {len(params)} argument(s), "
                    f"got {len(args)}",
                    use_loc,
                )
            mapping = dict(zip(params, args))

        substituted: list[Token] = []
        i = 0
        body = macro.body
        while i < len(body):
            tok = body[i]
            # Token pasting: a ## b.
            if i + 2 < len(body) and body[i + 1].is_punct("##"):
                left = self._paste_operand(tok, mapping)
                right = self._paste_operand(body[i + 2], mapping)
                pasted_src = SourceFile(str(use_loc), left + right)
                pasted = [
                    Token(t.kind, t.value, use_loc)
                    for t in tokenize(pasted_src)
                    if t.kind is not TokenKind.EOF
                ]
                substituted.extend(pasted)
                i += 3
                continue
            if tok.is_punct("#") and i + 1 < len(body) and body[i + 1].value in mapping:
                text = " ".join(t.value for t in mapping[body[i + 1].value])
                substituted.append(
                    Token(TokenKind.STRING, '"' + text.replace('"', '\\"') + '"', use_loc)
                )
                i += 2
                continue
            if tok.kind is TokenKind.IDENT and tok.value in mapping:
                substituted.extend(
                    Token(t.kind, t.value, use_loc) for t in mapping[tok.value]
                )
            else:
                substituted.append(Token(tok.kind, tok.value, use_loc))
            i += 1
        return self._expand(substituted, banned | {macro.name})

    @staticmethod
    def _paste_operand(tok: Token, mapping: dict[str, list[Token]]) -> str:
        if tok.kind is TokenKind.IDENT and tok.value in mapping:
            return "".join(t.value for t in mapping[tok.value])
        return tok.value

    # -- #if expression evaluation -------------------------------------------

    def _eval_condition(self, toks: list[Token], loc: Location) -> int:
        expanded: list[Token] = []
        cursor = _TokenCursor(toks)
        # Handle defined(X) before macro expansion, as the standard requires.
        pending: list[Token] = []
        while not cursor.at_end():
            tok = cursor.next()
            assert tok is not None
            if tok.kind is TokenKind.IDENT and tok.value == "defined":
                nxt = cursor.peek()
                if nxt is not None and nxt.is_punct("("):
                    cursor.next()
                    name = cursor.next()
                    close = cursor.next()
                    if name is None or close is None or not close.is_punct(")"):
                        raise PreprocessError("malformed defined()", loc)
                    target = name.value
                else:
                    name = cursor.next()
                    if name is None:
                        raise PreprocessError("malformed defined", loc)
                    target = name.value
                value = "1" if target in self.macros else "0"
                pending.append(Token(TokenKind.INT_CONST, value, tok.location))
            else:
                pending.append(tok)
        expanded = self._expand(pending)
        # Remaining identifiers evaluate to 0.
        normalized = [
            Token(TokenKind.INT_CONST, "0", t.location)
            if t.kind is TokenKind.IDENT
            else t
            for t in expanded
        ]
        return _CondParser(normalized, loc).parse()


class _CondParser:
    """Recursive-descent evaluator for #if constant expressions."""

    def __init__(self, toks: list[Token], loc: Location) -> None:
        self.toks = toks
        self.idx = 0
        self.loc = loc

    def parse(self) -> int:
        value = self._ternary()
        if self.idx != len(self.toks):
            raise PreprocessError("trailing tokens in #if expression", self.loc)
        return value

    def _peek(self) -> Token | None:
        return self.toks[self.idx] if self.idx < len(self.toks) else None

    def _accept(self, spelling: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.is_punct(spelling):
            self.idx += 1
            return True
        return False

    def _ternary(self) -> int:
        cond = self._or()
        if self._accept("?"):
            then = self._ternary()
            if not self._accept(":"):
                raise PreprocessError("expected ':' in #if expression", self.loc)
            other = self._ternary()
            return then if cond else other
        return cond

    def _or(self) -> int:
        value = self._and()
        while self._accept("||"):
            rhs = self._and()
            value = 1 if (value or rhs) else 0
        return value

    def _and(self) -> int:
        value = self._bitor()
        while self._accept("&&"):
            rhs = self._bitor()
            value = 1 if (value and rhs) else 0
        return value

    def _bitor(self) -> int:
        value = self._bitxor()
        while self._accept("|"):
            value |= self._bitxor()
        return value

    def _bitxor(self) -> int:
        value = self._bitand()
        while self._accept("^"):
            value ^= self._bitand()
        return value

    def _bitand(self) -> int:
        value = self._equality()
        while self._accept("&"):
            value &= self._equality()
        return value

    def _equality(self) -> int:
        value = self._relational()
        while True:
            if self._accept("=="):
                value = 1 if value == self._relational() else 0
            elif self._accept("!="):
                value = 1 if value != self._relational() else 0
            else:
                return value

    def _relational(self) -> int:
        value = self._shift()
        while True:
            if self._accept("<="):
                value = 1 if value <= self._shift() else 0
            elif self._accept(">="):
                value = 1 if value >= self._shift() else 0
            elif self._accept("<"):
                value = 1 if value < self._shift() else 0
            elif self._accept(">"):
                value = 1 if value > self._shift() else 0
            else:
                return value

    def _shift(self) -> int:
        value = self._additive()
        while True:
            if self._accept("<<"):
                value <<= self._additive()
            elif self._accept(">>"):
                value >>= self._additive()
            else:
                return value

    def _additive(self) -> int:
        value = self._multiplicative()
        while True:
            if self._accept("+"):
                value += self._multiplicative()
            elif self._accept("-"):
                value -= self._multiplicative()
            else:
                return value

    def _multiplicative(self) -> int:
        value = self._unary()
        while True:
            if self._accept("*"):
                value *= self._unary()
            elif self._accept("/"):
                rhs = self._unary()
                value = value // rhs if rhs else 0
            elif self._accept("%"):
                rhs = self._unary()
                value = value % rhs if rhs else 0
            else:
                return value

    def _unary(self) -> int:
        if self._accept("!"):
            return 0 if self._unary() else 1
        if self._accept("-"):
            return -self._unary()
        if self._accept("+"):
            return self._unary()
        if self._accept("~"):
            return ~self._unary()
        if self._accept("("):
            value = self._ternary()
            if not self._accept(")"):
                raise PreprocessError("expected ')' in #if expression", self.loc)
            return value
        tok = self._peek()
        if tok is None:
            raise PreprocessError("unexpected end of #if expression", self.loc)
        if tok.kind is TokenKind.INT_CONST:
            self.idx += 1
            return parse_int_constant(tok.value)
        if tok.kind is TokenKind.CHAR_CONST:
            self.idx += 1
            return _char_value(tok.value)
        raise PreprocessError(f"unexpected token {tok.value!r} in #if", self.loc)


def parse_int_constant(spelling: str) -> int:
    """Parse a C integer constant spelling (suffixes stripped)."""
    text = spelling.rstrip("uUlL")
    if text.lower().startswith("0x"):
        return int(text, 16)
    if text.startswith("0") and len(text) > 1 and text[1:].isdigit():
        return int(text, 8)
    return int(text) if text else 0


_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


def _char_value(spelling: str) -> int:
    inner = spelling[1:-1]
    if inner.startswith("\\") and len(inner) >= 2:
        return _ESCAPES.get(inner[1], ord(inner[1]))
    return ord(inner[0]) if inner else 0


def _split_lines(toks: list[Token]) -> list[list[Token]]:
    """Group a flat token list into physical-line groups.

    Directive lines must be isolated; for non-directive code the grouping
    is irrelevant because groups are concatenated back in order.
    """
    lines: list[list[Token]] = []
    current: list[Token] = []
    current_line = None
    # Lexer-produced tokens of one file have nondecreasing offsets, so a
    # forward cursor over the source's line-start table replaces the
    # per-token bisect behind ``tok.line``. Tokens without a usable
    # offset (macro-synthesized, pasted) fall back to ``tok.line``.
    src = None
    starts: list[int] = []
    n_starts = 0
    line_idx = 0
    for tok in toks:
        off = tok._offset
        s = tok._source
        if s is not None and off >= 0:
            if s is not src:
                src = s
                starts = s.line_starts
                n_starts = len(starts)
                line_idx = 0
            if off < starts[line_idx]:  # out-of-order token: rare, exact
                line = s.line_of(off)
                line_idx = line - 1
            else:
                while line_idx + 1 < n_starts and off >= starts[line_idx + 1]:
                    line_idx += 1
                line = line_idx + 1
        else:
            line = tok.line
        if line != current_line:
            # A directive only ends at a real newline; continuation lines were
            # already joined by the lexer's backslash-newline handling.
            if current:
                lines.append(current)
            current = []
            current_line = line
        current.append(tok)
    if current:
        lines.append(current)
    return lines
