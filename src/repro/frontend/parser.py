"""Recursive-descent parser for the supported C subset.

The grammar covers what the paper's programs (and real interface-heavy C
code like the employee-database example) use: full declaration syntax
with typedefs, struct/union/enum, pointers-to-functions, initializer
lists, every C89 statement form, and the complete expression grammar.

Annotation comments are consumed wherever declaration specifiers or
declarators may appear and attached to the declared entity, honouring the
paper's *outer-level* rule: an annotation constrains the declared name's
outermost type only. Control comments are collected on the side for the
suppression machinery.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from ..annotations.kinds import ANNOTATION_WORDS, AnnotationSet
from ..annotations.parse import AnnotationBuilder, AnnotationProblem
from . import cast as A
from .ctypes import (
    Array,
    CType,
    EnumType,
    FieldDecl,
    FunctionType,
    ParamType,
    Pointer,
    Primitive,
    StructType,
    TypedefType,
    add_qualifier,
    make_pointer,
    make_primitive,
)
from .preprocessor import parse_int_constant, _char_value
from .source import Location
from .tokens import Token, TokenKind


class ParseError(Exception):
    def __init__(self, message: str, location: Location) -> None:
        super().__init__(f"{location}: {message}")
        self.location = location


_TYPE_KEYWORDS = frozenset(
    {"void", "char", "short", "int", "long", "float", "double",
     "signed", "unsigned", "struct", "union", "enum"}
)
_STORAGE_KEYWORDS = frozenset({"typedef", "extern", "static", "auto", "register"})
_QUALIFIER_KEYWORDS = frozenset({"const", "volatile", "inline"})

# Hoisted unions: these membership tests sit on the statement/expression
# hot path, and rebuilding the union per call showed up in profiles.
_TYPE_START_KEYWORDS = _TYPE_KEYWORDS | _QUALIFIER_KEYWORDS
_DECL_START_KEYWORDS = _TYPE_KEYWORDS | _STORAGE_KEYWORDS | _QUALIFIER_KEYWORDS
_UNARY_OPS = frozenset({"&", "*", "+", "-", "~", "!"})

#: Canonical multi-word primitive spellings, keyed by sorted specifier words.
_PRIMITIVE_COMBOS = {
    ("void",): "void",
    ("char",): "char",
    ("char", "signed"): "signed char",
    ("char", "unsigned"): "unsigned char",
    ("short",): "short",
    ("int", "short"): "short",
    ("short", "signed"): "short",
    ("int", "short", "signed"): "short",
    ("short", "unsigned"): "unsigned short",
    ("int", "short", "unsigned"): "unsigned short",
    ("int",): "int",
    ("signed",): "int",
    ("int", "signed"): "int",
    ("unsigned",): "unsigned int",
    ("int", "unsigned"): "unsigned int",
    ("long",): "long",
    ("int", "long"): "long",
    ("long", "signed"): "long",
    ("int", "long", "signed"): "long",
    ("long", "unsigned"): "unsigned long",
    ("int", "long", "unsigned"): "unsigned long",
    ("long", "long"): "long long",
    ("int", "long", "long"): "long long",
    ("long", "long", "signed"): "long long",
    ("int", "long", "long", "signed"): "long long",
    ("long", "long", "unsigned"): "unsigned long long",
    ("int", "long", "long", "unsigned"): "unsigned long long",
    ("float",): "float",
    ("double",): "double",
    ("double", "long"): "long double",
}


@dataclass
class _DeclSpecs:
    """Result of parsing declaration specifiers."""

    base: CType
    storage: str | None
    annotations: AnnotationSet
    location: Location


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.typedefs: dict[str, TypedefType] = {}
        self.tags: dict[str, CType] = {}
        self.enum_consts: dict[str, int] = {}

    def lookup_typedef(self, name: str) -> TypedefType | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.typedefs:
                return scope.typedefs[name]
            scope = scope.parent
        return None

    def lookup_tag(self, tag: str) -> CType | None:
        scope: _Scope | None = self
        while scope is not None:
            if tag in scope.tags:
                return scope.tags[tag]
            scope = scope.parent
        return None

    def lookup_enum_const(self, name: str) -> int | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.enum_consts:
                return scope.enum_consts[name]
            scope = scope.parent
        return None


class Parser:
    """Parse a preprocessed token stream into a :class:`TranslationUnit`."""

    def __init__(
        self, toks: list[Token], name: str = "<string>",
        lcl_mode: bool = False,
        preseed: "_Scope | None" = None,
        engine: str | None = None,
    ) -> None:
        self.toks = [t for t in toks if t.kind is not TokenKind.CONTROL]
        self.controls = [t for t in toks if t.kind is TokenKind.CONTROL]
        self.name = name
        self.idx = 0
        self.scope = _Scope()
        if preseed is not None:
            # Seed the file scope with previously-parsed declarations
            # (the standard-library prelude): copies, so this parse
            # cannot pollute the shared cache.
            self.scope.typedefs = dict(preseed.typedefs)
            self.scope.tags = dict(preseed.tags)
            self.scope.enum_consts = dict(preseed.enum_consts)
        self.problems: list[AnnotationProblem] = []
        self.parse_errors: list[ParseError] = []
        # LCL specification mode (paper section 4): annotations appear as
        # bare words before the type ('null out only void *malloc(...)')
        # rather than inside /*@...@*/ comments.
        self.lcl_mode = lcl_mode
        if engine is None:
            engine = _DEFAULT_ENGINE
        if engine == "table":
            self._binary_expr = self._table_binary_expression
        elif engine == "reference":
            self._binary_expr = self._reference_binary_expression
        else:
            raise ValueError(f"unknown parser engine {engine!r}")

    # -- token plumbing ----------------------------------------------------

    # _peek/_next/_accept are the parser's innermost loop; each avoids
    # delegating to the other so a token step costs one method call.

    def _peek(self, ahead: int = 0) -> Token:
        toks = self.toks
        idx = self.idx + ahead
        if idx < len(toks):
            return toks[idx]
        return toks[-1]  # EOF sentinel

    def _next(self) -> Token:
        toks = self.toks
        idx = self.idx
        tok = toks[idx] if idx < len(toks) else toks[-1]
        if tok.kind is not TokenKind.EOF:
            self.idx = idx + 1
        return tok

    def _accept(self, spelling: str) -> Token | None:
        toks = self.toks
        idx = self.idx
        tok = toks[idx] if idx < len(toks) else toks[-1]
        kind = tok.kind
        if (kind is TokenKind.PUNCT or kind is TokenKind.KEYWORD) and (
            tok.value == spelling
        ):
            self.idx = idx + 1
            return tok
        return None

    def _expect(self, spelling: str) -> Token:
        tok = self._accept(spelling)
        if tok is None:
            got = self._peek()
            raise ParseError(f"expected {spelling!r}, got {got.value!r}", got.location)
        return tok

    def _at_eof(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    def _collect_annotations(self, builder: AnnotationBuilder) -> None:
        """Consume any annotation comments at the current position."""
        while self._peek().kind is TokenKind.ANNOTATION:
            tok = self._next()
            payload = tok.value
            if payload.split()[:1] in (["globals"], ["modifies"], ["uses"]):
                # function-level clauses are handled by the declarator parser
                self.idx -= 1
                return
            builder.add_payload(payload, tok.location)

    # -- entry point ---------------------------------------------------------

    def parse_translation_unit(self) -> A.TranslationUnit:
        items: list[A.Node] = []
        first_loc = self._peek().location
        while not self._at_eof():
            start_idx = self.idx
            try:
                item = self._external_declaration()
            except ParseError as exc:
                # Error recovery: record the error, resynchronize at the
                # next declaration boundary, and keep checking the rest of
                # the file (one bad declaration must not hide the others).
                self.parse_errors.append(exc)
                self._recover(start_idx)
                continue
            if item is not None:
                items.append(item)
        unit = A.TranslationUnit(first_loc, name=self.name, items=items)
        return unit

    def _recover(self, start_idx: int) -> None:
        """Skip past the erroneous declaration: consume tokens through the
        next top-level ';' or balanced '}' (guaranteeing progress)."""
        if self.idx <= start_idx:
            self.idx = start_idx + 1
        depth = 0
        while not self._at_eof():
            tok = self._next()
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                depth -= 1
                if depth <= 0:
                    return
            elif tok.is_punct(";") and depth <= 0:
                return

    # -- declarations ----------------------------------------------------------

    def _starts_declaration(self) -> bool:
        tok = self._peek()
        if tok.kind is TokenKind.ANNOTATION:
            return True
        if tok.kind is TokenKind.KEYWORD:
            return tok.value in _DECL_START_KEYWORDS
        if tok.kind is TokenKind.IDENT:
            if self.scope.lookup_typedef(tok.value) is None:
                return False
            # 'lst * x;' is a declaration if lst is a typedef; an identifier
            # that is immediately re-declared shadows the typedef only in
            # expressions, which we don't track -- typedef wins, as in LCLint.
            return True
        return False

    def _external_declaration(self) -> A.Node | None:
        if self._accept(";"):
            return None
        specs = self._declaration_specifiers()
        if self._accept(";"):
            # struct/union/enum definition with no declarators
            return A.Declaration(specs.location, declarators=[], storage=specs.storage)
        return self._init_declarator_list(specs, allow_funcdef=True)

    def _declaration_specifiers(self) -> _DeclSpecs:
        storage: str | None = None
        qualifiers: set[str] = set()
        type_words: list[str] = []
        tagged: CType | None = None
        typedef_ref: TypedefType | None = None
        builder = AnnotationBuilder()
        start = self._peek().location

        # Dispatch on token kind first: the specifier loop runs for every
        # declaration, and the original chain re-tested kind per branch.
        # Branch conditions are mutually exclusive, so the reordering is
        # behavior-preserving.
        while True:
            tok = self._peek()
            kind = tok.kind
            if kind is TokenKind.ANNOTATION:
                self._collect_annotations(builder)
                tok = self._peek()
                kind = tok.kind
                if kind is TokenKind.ANNOTATION:
                    break  # a globals/modifies/uses clause: declarator's job
            if kind is TokenKind.KEYWORD:
                value = tok.value
                if value in _TYPE_KEYWORDS:
                    if value == "enum":
                        tagged = self._enum()
                    elif value in ("struct", "union"):
                        tagged = self._struct_or_union()
                    else:
                        self._next()
                        type_words.append(value)
                elif value in _STORAGE_KEYWORDS:
                    self._next()
                    if storage is not None and storage != value:
                        raise ParseError(
                            f"multiple storage classes ({storage!r}, {value!r})",
                            tok.location,
                        )
                    storage = value
                elif value in _QUALIFIER_KEYWORDS:
                    self._next()
                    if value != "inline":
                        qualifiers.add(value)
                else:
                    break
            elif (
                kind is TokenKind.IDENT
                and not type_words
                and tagged is None
                and typedef_ref is None
            ):
                if (
                    self.lcl_mode
                    and tok.value in ANNOTATION_WORDS
                    and self.scope.lookup_typedef(tok.value) is None
                ):
                    self._next()
                    builder.add_word(tok.value, tok.location)
                    continue
                found = self.scope.lookup_typedef(tok.value)
                if found is None:
                    break
                self._next()
                typedef_ref = found
            else:
                break

        if tagged is not None:
            base: CType = tagged
        elif typedef_ref is not None:
            base = typedef_ref
        elif type_words:
            key = tuple(sorted(type_words))
            name = _PRIMITIVE_COMBOS.get(key)
            if name is None:
                raise ParseError(f"invalid type specifier {' '.join(type_words)!r}", start)
            base = make_primitive(name)
        else:
            # implicit int (K&R); LCLint accepts it with a warning
            base = make_primitive("int")
        for qual in qualifiers:
            base = add_qualifier(base, qual)
        self.problems.extend(builder.problems)
        return _DeclSpecs(base, storage, builder.build(), start)

    def _struct_or_union(self) -> StructType:
        kw = self._next()  # struct | union
        is_union = kw.value == "union"
        tag: str | None = None
        if self._peek().kind is TokenKind.IDENT:
            tag = self._next().value
        stype: StructType | None = None
        if tag is not None:
            existing = self.scope.lookup_tag(tag)
            if isinstance(existing, StructType) and existing.is_union == is_union:
                stype = existing
        if stype is None:
            stype = StructType(tag=tag, is_union=is_union)
            if tag is not None:
                self.scope.tags[tag] = stype
        if self._accept("{"):
            if stype.fields is not None and tag is not None:
                # Redefinition in an inner scope: make a fresh type.
                stype = StructType(tag=tag, is_union=is_union)
                self.scope.tags[tag] = stype
            fields: list[FieldDecl] = []
            while not self._accept("}"):
                specs = self._declaration_specifiers()
                if self._accept(";"):
                    continue  # anonymous member (unsupported detail) / stray ;
                while True:
                    builder = AnnotationBuilder()
                    self._collect_annotations(builder)
                    name, ctype, _ = self._declarator(specs.base)
                    if self._accept(":"):  # bit-field width
                        self._conditional_expression()
                    self.problems.extend(builder.problems)
                    anns = builder.build().merged_under(specs.annotations)
                    if name is not None:
                        fields.append(FieldDecl(name, ctype, anns))
                    if not self._accept(","):
                        break
                self._expect(";")
            stype.fields = fields
        return stype

    def _enum(self) -> EnumType:
        self._next()  # enum
        tag: str | None = None
        if self._peek().kind is TokenKind.IDENT:
            tag = self._next().value
        etype: EnumType | None = None
        if tag is not None:
            existing = self.scope.lookup_tag(tag)
            if isinstance(existing, EnumType):
                etype = existing
        if etype is None:
            etype = EnumType(tag=tag)
            if tag is not None:
                self.scope.tags[tag] = etype
        if self._accept("{"):
            value = 0
            while not self._accept("}"):
                name_tok = self._next()
                if name_tok.kind is not TokenKind.IDENT:
                    raise ParseError("expected enumerator name", name_tok.location)
                if self._accept("="):
                    expr = self._conditional_expression()
                    const = self._const_eval(expr)
                    if const is not None:
                        value = const
                etype.enumerators[name_tok.value] = value
                self.scope.enum_consts[name_tok.value] = value
                value += 1
                if not self._accept(","):
                    self._expect("}")
                    break
        return etype

    def _init_declarator_list(
        self, specs: _DeclSpecs, allow_funcdef: bool
    ) -> A.Node:
        declarators: list[A.Declarator] = []
        is_typedef = specs.storage == "typedef"
        first = True
        while True:
            builder = AnnotationBuilder()
            self._collect_annotations(builder)
            name, ctype, params = self._declarator(specs.base)
            globals_list, modifies_list = self._function_clauses()
            self.problems.extend(builder.problems)
            anns = builder.build().merged_under(specs.annotations)
            loc = self._peek().location

            if (
                first
                and allow_funcdef
                and not is_typedef
                and isinstance(ctype, FunctionType)
                and self._peek().is_punct("{")
            ):
                if name is None:
                    raise ParseError("function definition without a name", loc)
                body = self._compound_statement()
                return A.FunctionDef(
                    loc,
                    name=name,
                    ctype=ctype,
                    params=[
                        A.ParamDecl(p.location or loc, name=p.name,
                                    ctype=p.ctype, annotations=p.annotations)
                        for p in (params or ctype.params)
                    ],
                    annotations=anns,
                    body=body,
                    storage=specs.storage,
                    globals_list=globals_list,
                    modifies_list=modifies_list,
                )

            init: A.Expr | None = None
            if self._accept("="):
                init = self._initializer()
            if name is not None:
                if is_typedef:
                    tdef = TypedefType(name, ctype, anns)
                    self.scope.typedefs[name] = tdef
                declarators.append(
                    A.Declarator(loc, name=name, ctype=ctype,
                                 annotations=anns, init=init,
                                 globals_list=globals_list,
                                 modifies_list=modifies_list)
                )
            first = False
            if not self._accept(","):
                break
        self._expect(";")
        return A.Declaration(
            specs.location,
            declarators=declarators,
            storage=specs.storage,
            is_typedef=is_typedef,
        )

    def _function_clauses(self) -> tuple[list[A.GlobalUse], list[str] | None]:
        """Parse ``/*@globals ...@*/`` and ``/*@modifies ...@*/`` clauses."""
        out: list[A.GlobalUse] = []
        modifies: list[str] | None = None
        while self._peek().kind is TokenKind.ANNOTATION:
            payload = self._peek().value
            words = payload.split()
            if not words or words[0] not in ("globals", "modifies", "uses"):
                return out, modifies
            tok = self._next()
            if words[0] == "modifies":
                modifies = [] if modifies is None else modifies
                for word in words[1:]:
                    word = word.rstrip(",")
                    if word and word != "nothing":
                        modifies.append(word)
                continue
            if words[0] != "globals":
                continue
            undef = False
            killed = False
            for word in words[1:]:
                word = word.rstrip(",")
                if word == "undef":
                    undef = True
                elif word == "killed":
                    killed = True
                elif word:
                    out.append(
                        A.GlobalUse(tok.location, name=word, undef=undef,
                                    killed=killed)
                    )
                    undef = killed = False
        return out, modifies

    # -- declarators -----------------------------------------------------------

    def _declarator(
        self, base: CType, abstract: bool = False
    ) -> tuple[str | None, CType, list[ParamType] | None]:
        """Parse a declarator; returns (name, full type, outermost fn params).

        Implements the standard inside-out rule via a two-phase approach:
        collect pointer prefixes, then the direct declarator, then apply
        suffixes (arrays / parameter lists).
        """
        ptr_quals: list[set[str]] = []
        while self._accept("*"):
            quals: set[str] = set()
            while True:
                tok = self._peek()
                if tok.kind is TokenKind.KEYWORD and tok.value in _QUALIFIER_KEYWORDS:
                    self._next()
                    quals.add(tok.value)
                elif tok.kind is TokenKind.ANNOTATION:
                    # annotation between '*'s: applies at outer level; collect
                    builder = AnnotationBuilder()
                    self._collect_annotations(builder)
                    self.problems.extend(builder.problems)
                    # note: outer-level rule means these merge with declarator
                    # annotations; stash via closure below
                    self._pending_ptr_annotations = getattr(
                        self, "_pending_ptr_annotations", AnnotationBuilder()
                    )
                else:
                    break
            ptr_quals.append(quals)

        name: str | None = None
        inner: tuple[str | None, CType, list[ParamType] | None] | None = None
        tok = self._peek()
        if tok.is_punct("(") and self._is_nested_declarator():
            self._next()
            inner = self._declarator(make_primitive("int"), abstract=abstract)
            self._expect(")")
        elif tok.kind is TokenKind.IDENT and not abstract:
            name = self._next().value
        elif tok.kind is TokenKind.IDENT and abstract:
            # abstract declarators have no name; an identifier here would be
            # a parse error at a higher level
            pass

        suffixes: list[tuple[str, object]] = []
        params: list[ParamType] | None = None
        while True:
            if self._accept("["):
                size: int | None = None
                if not self._peek().is_punct("]"):
                    expr = self._conditional_expression()
                    size = self._const_eval(expr)
                self._expect("]")
                suffixes.append(("array", size))
            elif self._peek().is_punct("(") and self._params_follow():
                self._next()
                plist, variadic, old_style = self._parameter_list()
                suffixes.append(("func", (plist, variadic, old_style)))
                if params is None:
                    params = plist
            else:
                break

        # Inside-out rule: pointers bind between the base type and the
        # suffixes ('void *f(int)' is a function returning void*), so wrap
        # the base with the pointer prefixes first, then apply suffixes.
        ctype = base
        for quals in reversed(ptr_quals):
            ctype = make_pointer(ctype, frozenset(quals))
        for kind, payload in reversed(suffixes):
            if kind == "array":
                ctype = Array(ctype, payload)  # type: ignore[arg-type]
            else:
                plist, variadic, old_style = payload  # type: ignore[misc]
                ctype = FunctionType(ctype, plist, variadic, old_style)

        if inner is not None:
            # Substitute: the inner declarator's base slot receives ctype.
            inner_name, inner_type, inner_params = inner
            ctype = _replace_base(inner_type, ctype)
            return inner_name, ctype, inner_params or params
        return name, ctype, params

    def _is_nested_declarator(self) -> bool:
        """Disambiguate '(' after a type: nested declarator vs parameter list."""
        nxt = self._peek(1)
        if nxt.is_punct("*") or nxt.is_punct("("):
            return True
        if nxt.kind is TokenKind.IDENT and self.scope.lookup_typedef(nxt.value) is None:
            return True
        return False

    def _params_follow(self) -> bool:
        return True  # only called when '(' follows a direct declarator

    def _parameter_list(self) -> tuple[list[ParamType], bool, bool]:
        params: list[ParamType] = []
        variadic = False
        if self._accept(")"):
            return params, False, True  # old-style '()'
        while True:
            if self._accept("..."):
                variadic = True
                break
            param_loc = self._peek().location
            builder = AnnotationBuilder()
            self._collect_annotations(builder)
            specs = self._declaration_specifiers()
            self._collect_annotations(builder)
            pname, ptype, _ = self._declarator_maybe_abstract(specs.base)
            self._collect_annotations(builder)
            self.problems.extend(builder.problems)
            anns = builder.build().merged_under(specs.annotations)
            if not (
                pname is None
                and isinstance(ptype, Primitive)
                and ptype.is_void
                and not params
            ):
                params.append(ParamType(pname, ptype, anns, param_loc))
            if not self._accept(","):
                break
        self._expect(")")
        # '(void)' handled above by skipping the lone void parameter
        return params, variadic, False

    def _declarator_maybe_abstract(
        self, base: CType
    ) -> tuple[str | None, CType, list[ParamType] | None]:
        return self._declarator(base, abstract=False)

    def _type_name(self) -> CType:
        specs = self._declaration_specifiers()
        # abstract declarator (may be empty)
        tok = self._peek()
        if tok.is_punct(")"):
            return specs.base
        _, ctype, _ = self._declarator(specs.base, abstract=True)
        return ctype

    def _initializer(self) -> A.Expr:
        if self._peek().is_punct("{"):
            loc = self._next().location
            elems: list[A.Expr] = []
            while not self._accept("}"):
                if self._accept("."):  # designated initializer: .field = e
                    self._next()
                    self._expect("=")
                elems.append(self._initializer())
                if not self._accept(","):
                    self._expect("}")
                    break
            return A.InitList(loc, items=elems)
        return self._assignment_expression()

    # -- statements ------------------------------------------------------------

    def _compound_statement(self) -> A.Block:
        loc = self._expect("{").location
        outer = self.scope
        self.scope = _Scope(outer)
        items: list[A.Node] = []
        end_loc = loc
        try:
            while True:
                closing = self._accept("}")
                if closing is not None:
                    end_loc = closing.location
                    break
                if self._at_eof():
                    raise ParseError("unterminated block", loc)
                if self._starts_declaration():
                    item = self._external_declaration()
                    if item is not None:
                        if isinstance(item, A.FunctionDef):
                            raise ParseError(
                                "nested function definition", item.location
                            )
                        items.append(item)
                else:
                    items.append(self._statement())
        finally:
            self.scope = outer
        return A.Block(loc, items=items, end_location=end_loc)

    def _statement(self) -> A.Stmt:
        tok = self._peek()
        loc = tok.location
        if tok.is_punct("{"):
            return self._compound_statement()
        if tok.is_punct(";"):
            self._next()
            return A.EmptyStmt(loc)
        if tok.kind is TokenKind.KEYWORD:
            handler = self._STMT_HANDLERS.get(tok.value)
            if handler is not None:
                return handler(self)
        if (
            tok.kind is TokenKind.IDENT
            and self._peek(1).is_punct(":")
            and not self._peek(2).is_punct(":")
        ):
            self._next()
            self._next()
            body = self._statement()
            return A.Label(loc, name=tok.value, body=body)
        expr = self._expression()
        self._expect(";")
        return A.ExprStmt(loc, expr=expr)

    def _stmt_if(self) -> A.Stmt:
        loc = self._next().location
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        then = self._statement()
        orelse = self._statement() if self._accept("else") else None
        return A.If(loc, cond=cond, then=then, orelse=orelse)

    def _stmt_while(self) -> A.Stmt:
        loc = self._next().location
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        body = self._statement()
        return A.While(loc, cond=cond, body=body)

    def _stmt_do(self) -> A.Stmt:
        loc = self._next().location
        body = self._statement()
        self._expect("while")
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        self._expect(";")
        return A.DoWhile(loc, body=body, cond=cond)

    def _stmt_for(self) -> A.Stmt:
        loc = self._next().location
        self._expect("(")
        init: A.Node | None = None
        if not self._accept(";"):
            if self._starts_declaration():
                init = self._external_declaration()
            else:
                init = A.ExprStmt(loc, expr=self._expression())
                self._expect(";")
        cond = None if self._peek().is_punct(";") else self._expression()
        self._expect(";")
        step = None if self._peek().is_punct(")") else self._expression()
        self._expect(")")
        body = self._statement()
        return A.For(loc, init=init, cond=cond, step=step, body=body)

    def _stmt_switch(self) -> A.Stmt:
        loc = self._next().location
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        body = self._statement()
        return A.Switch(loc, cond=cond, body=body)

    def _stmt_case(self) -> A.Stmt:
        loc = self._next().location
        value = self._conditional_expression()
        self._expect(":")
        body = self._statement()
        return A.Case(loc, value=value, body=body)

    def _stmt_default(self) -> A.Stmt:
        loc = self._next().location
        self._expect(":")
        body = self._statement()
        return A.Case(loc, value=None, body=body)

    def _stmt_break(self) -> A.Stmt:
        loc = self._next().location
        self._expect(";")
        return A.Break(loc)

    def _stmt_continue(self) -> A.Stmt:
        loc = self._next().location
        self._expect(";")
        return A.Continue(loc)

    def _stmt_return(self) -> A.Stmt:
        loc = self._next().location
        value = None if self._peek().is_punct(";") else self._expression()
        self._expect(";")
        return A.Return(loc, value=value)

    def _stmt_goto(self) -> A.Stmt:
        loc = self._next().location
        label = self._next()
        if label.kind is not TokenKind.IDENT:
            raise ParseError("expected label after goto", label.location)
        self._expect(";")
        return A.Goto(loc, label=label.value)

    #: Keyword -> unbound handler, replacing per-statement
    #: ``getattr(self, f"_stmt_{...}")`` string formatting + lookup.
    _STMT_HANDLERS = {
        "if": _stmt_if, "while": _stmt_while, "do": _stmt_do,
        "for": _stmt_for, "switch": _stmt_switch, "case": _stmt_case,
        "default": _stmt_default, "break": _stmt_break,
        "continue": _stmt_continue, "return": _stmt_return,
        "goto": _stmt_goto,
    }

    # -- expressions -----------------------------------------------------------

    def _expression(self) -> A.Expr:
        expr = self._assignment_expression()
        if not self._peek().is_punct(","):
            return expr
        exprs = [expr]
        loc = expr.location
        while self._accept(","):
            exprs.append(self._assignment_expression())
        return A.Comma(loc, exprs=exprs)

    _ASSIGN_OPS = frozenset(
        ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")
    )

    def _assignment_expression(self) -> A.Expr:
        lhs = self._conditional_expression()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.value in self._ASSIGN_OPS:
            self._next()
            rhs = self._assignment_expression()
            return A.Assign(tok.location, op=tok.value, target=lhs, value=rhs)
        return lhs

    def _conditional_expression(self) -> A.Expr:
        cond = self._binary_expr()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.value == "?":
            loc = self._next().location
            then = self._expression()
            self._expect(":")
            other = self._conditional_expression()
            return A.Ternary(loc, cond=cond, then=then, other=other)
        return cond

    #: Binary operator precedence (all left-associative in this grammar);
    #: higher binds tighter. Level *i* of the reference grammar's
    #: ``_BINARY_LEVELS`` corresponds to precedence ``i + 1`` here.
    _BIN_PREC = {
        "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
        "==": 6, "!=": 6,
        "<": 7, ">": 7, "<=": 7, ">=": 7,
        "<<": 8, ">>": 8,
        "+": 9, "-": 9,
        "*": 10, "/": 10, "%": 10,
    }

    def _table_binary_expression(self) -> A.Expr:
        return self._binary_climb(1)

    def _binary_climb(self, min_prec: int) -> A.Expr:
        """Precedence-climbing binary-expression core (production engine).

        One table lookup per operator replaces the reference grammar's
        ten-deep recursive descent (which recursed through every level
        even for a lone primary expression). Left-associativity is the
        ``prec + 1`` on the right-operand climb; the resulting tree is
        node-for-node identical to the reference engine's, which the
        parser parity suite asserts.
        """
        expr = self._cast_expression()
        prec_of = self._BIN_PREC
        while True:
            tok = self._peek()
            if tok.kind is not TokenKind.PUNCT:
                return expr
            prec = prec_of.get(tok.value)
            if prec is None or prec < min_prec:
                return expr
            self._next()
            rhs = self._binary_climb(prec + 1)
            expr = A.Binary(tok.location, op=tok.value, lhs=expr, rhs=rhs)

    _BINARY_LEVELS = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def _reference_binary_expression(self) -> A.Expr:
        return self._binary_expression(0)

    def _binary_expression(self, level: int) -> A.Expr:
        """Reference layered-grammar engine (retained for parity runs)."""
        if level >= len(self._BINARY_LEVELS):
            return self._cast_expression()
        ops = self._BINARY_LEVELS[level]
        expr = self._binary_expression(level + 1)
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.PUNCT and tok.value in ops:
                # don't treat '&' before unary context wrongly: precedence
                # climbing already handles this correctly.
                self._next()
                rhs = self._binary_expression(level + 1)
                expr = A.Binary(tok.location, op=tok.value, lhs=expr, rhs=rhs)
            else:
                return expr

    def _cast_expression(self) -> A.Expr:
        tok = self._peek()
        if (
            tok.kind is TokenKind.PUNCT
            and tok.value == "("
            and self._is_type_start(self._peek(1))
        ):
            loc = self._next().location
            to_type = self._type_name()
            self._expect(")")
            if self._peek().is_punct("{"):
                # compound literal (C99) -- parse as initializer expression
                init = self._initializer()
                return A.Cast(loc, to_type=to_type, operand=init)
            operand = self._cast_expression()
            return A.Cast(loc, to_type=to_type, operand=operand)
        return self._unary_expression()

    def _is_type_start(self, tok: Token) -> bool:
        if tok.kind is TokenKind.KEYWORD:
            return tok.value in _TYPE_START_KEYWORDS
        if tok.kind is TokenKind.ANNOTATION:
            return True
        if tok.kind is TokenKind.IDENT:
            return self.scope.lookup_typedef(tok.value) is not None
        return False

    def _unary_expression(self) -> A.Expr:
        tok = self._peek()
        loc = tok.location
        if tok.kind is TokenKind.KEYWORD and tok.value == "sizeof":
            self._next()
            if self._peek().is_punct("(") and self._is_type_start(self._peek(1)):
                self._next()
                of_type = self._type_name()
                self._expect(")")
                return A.SizeofType(loc, of_type=of_type)
            operand = self._unary_expression()
            return A.SizeofExpr(loc, operand=operand)
        if tok.kind is TokenKind.PUNCT:
            op = tok.value
            if op in ("++", "--"):
                self._next()
                operand = self._unary_expression()
                return A.Unary(loc, op=op, operand=operand)
            if op in _UNARY_OPS:
                self._next()
                operand = self._cast_expression()
                return A.Unary(loc, op=op, operand=operand)
        return self._postfix_expression()

    def _postfix_expression(self) -> A.Expr:
        expr = self._primary_expression()
        punct = TokenKind.PUNCT
        while True:
            tok = self._peek()
            # One kind test up front, then value dispatch: this loop runs
            # after every primary expression, and most exits are cold.
            if tok.kind is not punct:
                return expr
            value = tok.value
            if value == "[":
                self._next()
                index = self._expression()
                self._expect("]")
                expr = A.Index(tok.location, array=expr, index=index)
            elif value == "(":
                self._next()
                args: list[A.Expr] = []
                if not self._peek().is_punct(")"):
                    args.append(self._assignment_expression())
                    while self._accept(","):
                        args.append(self._assignment_expression())
                self._expect(")")
                expr = A.Call(tok.location, func=expr, args=args)
            elif value == ".":
                self._next()
                name = self._next()
                expr = A.Member(tok.location, obj=expr, fieldname=name.value,
                                arrow=False)
            elif value == "->":
                self._next()
                name = self._next()
                expr = A.Member(tok.location, obj=expr, fieldname=name.value,
                                arrow=True)
            elif value == "++" or value == "--":
                self._next()
                expr = A.Unary(tok.location, op="p" + value, operand=expr)
            else:
                return expr

    def _primary_expression(self) -> A.Expr:
        tok = self._next()
        loc = tok.location
        if tok.kind is TokenKind.IDENT:
            return A.Ident(loc, name=tok.value)
        if tok.kind is TokenKind.INT_CONST:
            return A.IntLit(loc, value=parse_int_constant(tok.value),
                            spelling=tok.value)
        if tok.kind is TokenKind.FLOAT_CONST:
            return A.FloatLit(loc, value=float(tok.value.rstrip("fFlL")),
                              spelling=tok.value)
        if tok.kind is TokenKind.CHAR_CONST:
            return A.CharLit(loc, value=_char_value(tok.value), spelling=tok.value)
        if tok.kind is TokenKind.STRING:
            text = _decode_string(tok.value)
            # adjacent string literals concatenate
            while self._peek().kind is TokenKind.STRING:
                text += _decode_string(self._next().value)
            return A.StringLit(loc, value=text, spelling=tok.value)
        if tok.is_punct("("):
            expr = self._expression()
            self._expect(")")
            return expr
        raise ParseError(f"unexpected token {tok.value!r}", loc)

    # -- constant folding (array sizes, enum values) ----------------------------

    _SIZES = {
        "void": 1, "char": 1, "signed char": 1, "unsigned char": 1,
        "short": 2, "unsigned short": 2, "int": 4, "unsigned int": 4,
        "long": 8, "unsigned long": 8, "long long": 8,
        "unsigned long long": 8, "float": 4, "double": 8, "long double": 16,
    }

    def _sizeof_type(self, ctype: CType) -> int:
        from .ctypes import strip_typedefs

        actual = strip_typedefs(ctype)
        if isinstance(actual, Pointer) or isinstance(actual, FunctionType):
            return 8
        if isinstance(actual, Primitive):
            return self._SIZES.get(actual.name, 4)
        if isinstance(actual, Array):
            return (actual.size or 1) * self._sizeof_type(actual.of)
        if isinstance(actual, StructType):
            return sum(self._sizeof_type(f.ctype) for f in actual.fields or []) or 1
        return 4

    def _const_eval(self, expr: A.Expr) -> int | None:
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.CharLit):
            return expr.value
        if isinstance(expr, A.Ident):
            return self.scope.lookup_enum_const(expr.name)
        if isinstance(expr, A.SizeofType):
            return self._sizeof_type(expr.of_type)
        if isinstance(expr, A.SizeofExpr):
            return 8  # approximation; only used for array sizing
        if isinstance(expr, A.Unary):
            value = self._const_eval(expr.operand)
            if value is None:
                return None
            return {"-": -value, "+": value, "~": ~value,
                    "!": int(not value)}.get(expr.op)
        if isinstance(expr, A.Binary):
            lhs = self._const_eval(expr.lhs)
            rhs = self._const_eval(expr.rhs)
            if lhs is None or rhs is None:
                return None
            try:
                return {
                    "+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs,
                    "/": lhs // rhs if rhs else None,
                    "%": lhs % rhs if rhs else None,
                    "<<": lhs << rhs, ">>": lhs >> rhs,
                    "&": lhs & rhs, "|": lhs | rhs, "^": lhs ^ rhs,
                    "==": int(lhs == rhs), "!=": int(lhs != rhs),
                    "<": int(lhs < rhs), ">": int(lhs > rhs),
                    "<=": int(lhs <= rhs), ">=": int(lhs >= rhs),
                    "&&": int(bool(lhs and rhs)), "||": int(bool(lhs or rhs)),
                }.get(expr.op)
            except ValueError:
                return None
        if isinstance(expr, A.Cast):
            return self._const_eval(expr.operand)
        return None


def _replace_base(ctype: CType, new_base: CType) -> CType:
    """Replace the innermost 'int' placeholder of a nested declarator."""
    if isinstance(ctype, Pointer):
        return Pointer(_replace_base(ctype.to, new_base), ctype.qualifiers)
    if isinstance(ctype, Array):
        return Array(_replace_base(ctype.of, new_base), ctype.size)
    if isinstance(ctype, FunctionType):
        return FunctionType(
            _replace_base(ctype.ret, new_base),
            ctype.params,
            ctype.variadic,
            ctype.old_style,
        )
    return new_base


_STR_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


def _decode_string(spelling: str) -> str:
    inner = spelling[1:-1]
    out: list[str] = []
    i = 0
    while i < len(inner):
        ch = inner[i]
        if ch == "\\" and i + 1 < len(inner):
            out.append(_STR_ESCAPES.get(inner[i + 1], inner[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


# -- engine selection ---------------------------------------------------------

_DEFAULT_ENGINE = "table"


@contextmanager
def parser_engine(name: str):
    """Temporarily switch the module-default expression-parsing engine.

    ``name`` is ``"table"`` (production precedence climbing) or
    ``"reference"`` (the retained layered recursive descent). The parser
    parity suite and the benchmark harness use this to run both engines
    over the same inputs, mirroring :func:`repro.frontend.lexer.lexer_engine`.
    """
    global _DEFAULT_ENGINE
    if name not in ("table", "reference"):
        raise ValueError(f"unknown parser engine {name!r}")
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = name
    try:
        yield
    finally:
        _DEFAULT_ENGINE = previous


def parse_tokens(toks: list[Token], name: str = "<string>") -> A.TranslationUnit:
    """Parse a token stream into an AST."""
    return Parser(toks, name).parse_translation_unit()
