"""Source files and source locations.

Every token, AST node, and diagnostic carries a :class:`Location` so that
messages can be reported LCLint-style (``file.c:5: ...``) and so that
sub-locations ("Storage gname may become null" at the assignment site) can
point back into the program text.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Location:
    """A position in a source file (1-based line and column)."""

    filename: str
    line: int
    column: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}"

    def with_column(self, column: int) -> "Location":
        return Location(self.filename, self.line, column)


#: Location used for entities with no source position (builtins, stdlib specs).
BUILTIN_LOCATION = Location("<builtin>", 0, 0)


@dataclass
class SourceFile:
    """A named body of C source text with line-offset indexing."""

    name: str
    text: str
    _line_starts: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                starts.append(i + 1)
        self._line_starts = starts

    @property
    def line_count(self) -> int:
        return len(self._line_starts)

    def location(self, offset: int) -> Location:
        """Map a character offset into a :class:`Location`."""
        if offset < 0:
            offset = 0
        line = bisect.bisect_right(self._line_starts, offset)
        column = offset - self._line_starts[line - 1] + 1
        return Location(self.name, line, column)

    def line_text(self, line: int) -> str:
        """Return the text of a 1-based line (without the newline)."""
        if line < 1 or line > len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end == -1:
            end = len(self.text)
        return self.text[start:end]


class SourceManager:
    """Registry of source files, including virtual (in-memory) headers.

    The preprocessor resolves ``#include`` directives against this manager,
    which lets tests and the benchmark generator assemble multi-file
    programs without touching the real filesystem.
    """

    def __init__(self) -> None:
        self._files: dict[str, SourceFile] = {}

    def add(self, name: str, text: str) -> SourceFile:
        sf = SourceFile(name, text)
        self._files[name] = sf
        return sf

    def get(self, name: str) -> SourceFile | None:
        return self._files.get(name)

    def names(self) -> list[str]:
        return sorted(self._files)

    def load(self, path: str) -> SourceFile:
        """Load a file from disk (cached by path)."""
        existing = self._files.get(path)
        if existing is not None:
            return existing
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            return self.add(path, handle.read())
