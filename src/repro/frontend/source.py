"""Source files and source locations.

Every token, AST node, and diagnostic carries a :class:`Location` so that
messages can be reported LCLint-style (``file.c:5: ...``) and so that
sub-locations ("Storage gname may become null" at the assignment site) can
point back into the program text.

The line-start index of a :class:`SourceFile` is built lazily (with
``re.finditer`` rather than a per-character Python loop) the first time a
location is actually needed; a file that is lexed but produces no
diagnostics and no parsed locations never pays for it.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field

_NEWLINE_RE = re.compile("\n")


@dataclass(frozen=True, order=True, slots=True)
class Location:
    """A position in a source file (1-based line and column)."""

    filename: str
    line: int
    column: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}"

    def with_column(self, column: int) -> "Location":
        return Location(self.filename, self.line, column)


#: Location used for entities with no source position (builtins, stdlib specs).
BUILTIN_LOCATION = Location("<builtin>", 0, 0)


@dataclass
class SourceFile:
    """A named body of C source text with lazy line-offset indexing."""

    name: str
    text: str
    _line_starts: list[int] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def line_starts(self) -> list[int]:
        """Offsets of the first character of every line (built on demand)."""
        starts = self._line_starts
        if starts is None:
            starts = [0]
            starts.extend(m.end() for m in _NEWLINE_RE.finditer(self.text))
            self._line_starts = starts
        return starts

    @property
    def line_count(self) -> int:
        return len(self.line_starts)

    def location(self, offset: int) -> Location:
        """Map a character offset into a :class:`Location`."""
        if offset < 0:
            offset = 0
        starts = self.line_starts
        line = bisect.bisect_right(starts, offset)
        column = offset - starts[line - 1] + 1
        return Location(self.name, line, column)

    def line_of(self, offset: int) -> int:
        """The 1-based line containing *offset* (no Location allocation)."""
        if offset < 0:
            offset = 0
        return bisect.bisect_right(self.line_starts, offset)

    def coords(self, offset: int) -> tuple[str, int, int]:
        """``(filename, line, column)`` for *offset*, allocation-light."""
        if offset < 0:
            offset = 0
        starts = self.line_starts
        line = bisect.bisect_right(starts, offset)
        return self.name, line, offset - starts[line - 1] + 1

    def line_text(self, line: int) -> str:
        """Return the text of a 1-based line (without the newline)."""
        starts = self.line_starts
        if line < 1 or line > len(starts):
            return ""
        start = starts[line - 1]
        end = self.text.find("\n", start)
        if end == -1:
            end = len(self.text)
        return self.text[start:end]


class SourceManager:
    """Registry of source files, including virtual (in-memory) headers.

    The preprocessor resolves ``#include`` directives against this manager,
    which lets tests and the benchmark generator assemble multi-file
    programs without touching the real filesystem.
    """

    def __init__(self) -> None:
        self._files: dict[str, SourceFile] = {}

    def add(self, name: str, text: str) -> SourceFile:
        sf = SourceFile(name, text)
        self._files[name] = sf
        return sf

    def get(self, name: str) -> SourceFile | None:
        return self._files.get(name)

    def names(self) -> list[str]:
        return sorted(self._files)

    def load(self, path: str) -> SourceFile:
        """Load a file from disk (cached by path)."""
        existing = self._files.get(path)
        if existing is not None:
            return existing
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            return self.add(path, handle.read())
