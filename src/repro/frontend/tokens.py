"""Token kinds for the C lexer.

The lexer produces ordinary C tokens plus two kinds the paper's system
depends on: ``ANNOTATION`` for ``/*@ ... @*/`` syntactic comments and
``CONTROL`` for stylized control comments (message suppression and local
flag settings, paper sections 2 and 7).

``Token`` is deliberately not a dataclass: it is the single most
allocated object in a cold check, so it uses ``__slots__`` and computes
its :class:`~repro.frontend.source.Location` lazily from a
``(source, offset)`` pair.  Most tokens — everything the parser skips
over, everything that only feeds the fingerprint digest — never
materialize a ``Location`` at all.
"""

from __future__ import annotations

import enum
from sys import intern as _intern

from .source import Location, SourceFile


class TokenKind(enum.Enum):
    IDENT = "identifier"
    KEYWORD = "keyword"
    INT_CONST = "integer constant"
    FLOAT_CONST = "floating constant"
    CHAR_CONST = "character constant"
    STRING = "string literal"
    PUNCT = "punctuator"
    ANNOTATION = "annotation comment"
    CONTROL = "control comment"
    EOF = "end of file"


#: C89 keywords plus the handful of C99 ones that show up in real headers.
KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for", "goto",
        "if", "inline", "int", "long", "register", "return", "short",
        "signed", "sizeof", "static", "struct", "switch", "typedef",
        "union", "unsigned", "void", "volatile", "while",
    }
)

#: Multi-character punctuators, longest first so the lexer can greedily match.
PUNCTUATORS = (
    "<<=", ">>=", "...", "##", "#",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", "?", "~",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "^", "|", ".",
)

#: Canonical interned spellings.  Tokens for keywords and punctuators all
#: share one string object per spelling, so downstream ``==`` checks are
#: usually pointer comparisons and dict lookups hash a cached value.
KEYWORD_SPELLINGS: dict[str, str] = {kw: _intern(kw) for kw in KEYWORDS}
PUNCT_SPELLINGS: dict[str, str] = {p: _intern(p) for p in PUNCTUATORS}


class Token:
    """A lexical token with its spelling and (lazily computed) location.

    A token is backed either by a precomputed ``Location`` (preprocessor
    output: macro-expansion tokens carry the location of the macro use)
    or by a ``(source, offset)`` pair from the lexer, in which case the
    ``Location`` is built on first access and cached.
    """

    __slots__ = ("kind", "value", "_location", "_source", "_offset", "_fp")

    def __init__(
        self,
        kind: TokenKind,
        value: str,
        location: Location | None = None,
        source: SourceFile | None = None,
        offset: int = -1,
    ) -> None:
        self.kind = kind
        self.value = value
        self._location = location
        self._source = source
        self._offset = offset
        # ``_fp`` caches this token's fingerprint bytes (see
        # ``incremental.fingerprint.unit_digests``). Header tokens are
        # shared across every including unit via the preprocessor's
        # per-file token cache, so the cache turns the dominant digest
        # cost from per-unit into per-batch.
        self._fp: bytes | None = None

    # -- location access --------------------------------------------------

    @property
    def location(self) -> Location:
        loc = self._location
        if loc is None:
            loc = self._source.location(self._offset)
            self._location = loc
        return loc

    @property
    def line(self) -> int:
        """1-based line number, computed without allocating a Location."""
        loc = self._location
        if loc is not None:
            return loc.line
        return self._source.line_of(self._offset)

    @property
    def offset(self) -> int | None:
        """Character offset into the backing source, if lexer-produced."""
        return self._offset if self._offset >= 0 else None

    def coords(self) -> tuple[str, int, int]:
        """``(filename, line, column)`` without allocating a Location."""
        loc = self._location
        if loc is not None:
            return loc.filename, loc.line, loc.column
        return self._source.coords(self._offset)

    # -- predicates --------------------------------------------------------

    def is_punct(self, spelling: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.value == spelling

    def is_keyword(self, spelling: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == spelling

    # -- protocol ----------------------------------------------------------

    def __str__(self) -> str:
        return self.value if self.kind is not TokenKind.EOF else "<eof>"

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.value!r}, {self.location})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.kind is other.kind
            and self.value == other.value
            and self.coords() == other.coords()
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.value))

    # Pickled tokens (parallel checking ships parsed units to workers)
    # materialize their location and drop the source reference so the
    # whole file text does not ride along with every token.

    def __getstate__(self):
        return (self.kind, self.value, self.location)

    def __setstate__(self, state) -> None:
        self.kind, self.value, self._location = state
        self._source = None
        self._offset = -1
        self._fp = None
