"""Token kinds for the C lexer.

The lexer produces ordinary C tokens plus two kinds the paper's system
depends on: ``ANNOTATION`` for ``/*@ ... @*/`` syntactic comments and
``CONTROL`` for stylized control comments (message suppression and local
flag settings, paper sections 2 and 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .source import Location


class TokenKind(enum.Enum):
    IDENT = "identifier"
    KEYWORD = "keyword"
    INT_CONST = "integer constant"
    FLOAT_CONST = "floating constant"
    CHAR_CONST = "character constant"
    STRING = "string literal"
    PUNCT = "punctuator"
    ANNOTATION = "annotation comment"
    CONTROL = "control comment"
    EOF = "end of file"


#: C89 keywords plus the handful of C99 ones that show up in real headers.
KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for", "goto",
        "if", "inline", "int", "long", "register", "return", "short",
        "signed", "sizeof", "static", "struct", "switch", "typedef",
        "union", "unsigned", "void", "volatile", "while",
    }
)

#: Multi-character punctuators, longest first so the lexer can greedily match.
PUNCTUATORS = (
    "<<=", ">>=", "...", "##", "#",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", "?", "~",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "^", "|", ".",
)


@dataclass(frozen=True)
class Token:
    """A lexical token with its spelling and source location."""

    kind: TokenKind
    value: str
    location: Location

    def is_punct(self, spelling: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.value == spelling

    def is_keyword(self, spelling: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == spelling

    def __str__(self) -> str:
        return self.value if self.kind is not TokenKind.EOF else "<eof>"
