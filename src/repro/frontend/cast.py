"""Abstract syntax tree for the supported C subset.

Nodes are ``slots=True`` dataclasses: a cold parse allocates hundreds of
thousands of them, and slots drop the per-node ``__dict__`` (smaller,
faster attribute access, cheaper construction). Every node carries a
source :class:`~repro.frontend.source.Location`. Declarations
additionally carry an :class:`~repro.annotations.kinds.AnnotationSet`,
which is how the paper's interface assumptions enter the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Iterator

from .source import Location

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..annotations.kinds import AnnotationSet
    from .ctypes import CType

#: Per-class child-bearing field names (everything but ``location``),
#: resolved once per node class. With ``slots=True`` there is no
#: ``__dict__`` to iterate, and ``dataclasses.fields`` per call would be
#: far slower than the old dict walk.
_CHILD_FIELDS: dict[type, tuple[str, ...]] = {}


@dataclass(slots=True)
class Node:
    location: Location

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (used by generic walkers)."""
        cls = type(self)
        names = _CHILD_FIELDS.get(cls)
        if names is None:
            names = tuple(
                f.name for f in fields(cls) if f.name != "location"
            )
            _CHILD_FIELDS[cls] = names
        for name in names:
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of the subtree rooted at *node*."""
    yield node
    for child in node.children():
        yield from walk(child)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Expr(Node):
    pass


@dataclass(slots=True)
class IntLit(Expr):
    value: int
    spelling: str = ""


@dataclass(slots=True)
class FloatLit(Expr):
    value: float
    spelling: str = ""


@dataclass(slots=True)
class CharLit(Expr):
    value: int
    spelling: str = ""


@dataclass(slots=True)
class StringLit(Expr):
    value: str  # decoded contents, without quotes
    spelling: str = ""


@dataclass(slots=True)
class Ident(Expr):
    name: str


@dataclass(slots=True)
class Unary(Expr):
    op: str  # one of: * & ! ~ - + ++ -- (prefix), p++ p-- (postfix)
    operand: Expr


@dataclass(slots=True)
class Binary(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass(slots=True)
class Assign(Expr):
    op: str  # '=', '+=', ...
    target: Expr
    value: Expr


@dataclass(slots=True)
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass(slots=True)
class Call(Expr):
    func: Expr
    args: list[Expr]


@dataclass(slots=True)
class Member(Expr):
    obj: Expr
    fieldname: str
    arrow: bool  # True for '->', False for '.'


@dataclass(slots=True)
class Index(Expr):
    array: Expr
    index: Expr


@dataclass(slots=True)
class Cast(Expr):
    to_type: "CType"
    operand: Expr


@dataclass(slots=True)
class SizeofExpr(Expr):
    operand: Expr


@dataclass(slots=True)
class SizeofType(Expr):
    of_type: "CType"


@dataclass(slots=True)
class Comma(Expr):
    exprs: list[Expr]


@dataclass(slots=True)
class InitList(Expr):
    """A brace initializer list: ``{1, 2, 3}``."""

    items: list[Expr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Stmt(Node):
    pass


@dataclass(slots=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(slots=True)
class EmptyStmt(Stmt):
    pass


@dataclass(slots=True)
class Block(Stmt):
    items: list[Node] = field(default_factory=list)  # Stmt or Declaration
    end_location: Location | None = None  # location of the closing brace


@dataclass(slots=True)
class If(Stmt):
    cond: Expr
    then: Stmt
    orelse: Stmt | None


@dataclass(slots=True)
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass(slots=True)
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass(slots=True)
class For(Stmt):
    init: Node | None  # ExprStmt or Declaration
    cond: Expr | None
    step: Expr | None
    body: Stmt


@dataclass(slots=True)
class Switch(Stmt):
    cond: Expr
    body: Stmt


@dataclass(slots=True)
class Case(Stmt):
    value: Expr | None  # None => default
    body: Stmt


@dataclass(slots=True)
class Break(Stmt):
    pass


@dataclass(slots=True)
class Continue(Stmt):
    pass


@dataclass(slots=True)
class Return(Stmt):
    value: Expr | None


@dataclass(slots=True)
class Goto(Stmt):
    label: str


@dataclass(slots=True)
class Label(Stmt):
    name: str
    body: Stmt


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Declarator(Node):
    """One declared name with its resolved type, annotations, and initializer."""

    name: str
    ctype: "CType"
    annotations: "AnnotationSet"
    init: Expr | None = None
    globals_list: list["GlobalUse"] = field(default_factory=list)
    modifies_list: list[str] | None = None  # None => no modifies clause


@dataclass(slots=True)
class Declaration(Node):
    """A declaration statement: zero or more declarators plus storage class."""

    declarators: list[Declarator]
    storage: str | None = None  # 'extern', 'static', 'typedef', 'register', 'auto'
    is_typedef: bool = False


@dataclass(slots=True)
class ParamDecl(Node):
    name: str | None
    ctype: "CType"
    annotations: "AnnotationSet"


@dataclass(slots=True)
class GlobalUse(Node):
    """One entry in a function's ``/*@globals ...@*/`` list."""

    name: str
    undef: bool = False  # global may be undefined at entry (paper: 'undef')
    killed: bool = False  # function releases the global's storage


@dataclass(slots=True)
class FunctionDef(Node):
    name: str
    ctype: "CType"  # a FunctionType
    params: list[ParamDecl]
    annotations: "AnnotationSet"  # return-value / function annotations
    body: Block
    storage: str | None = None
    globals_list: list[GlobalUse] = field(default_factory=list)
    modifies_list: list[str] | None = None  # None => no modifies clause


@dataclass(slots=True)
class TranslationUnit(Node):
    name: str
    items: list[Node] = field(default_factory=list)  # Declaration | FunctionDef

    def functions(self) -> list[FunctionDef]:
        return [item for item in self.items if isinstance(item, FunctionDef)]

    def declarations(self) -> list[Declaration]:
        return [item for item in self.items if isinstance(item, Declaration)]
