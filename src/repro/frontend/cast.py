"""Abstract syntax tree for the supported C subset.

Nodes are plain dataclasses. Every node carries a source
:class:`~repro.frontend.source.Location`. Declarations additionally carry
an :class:`~repro.annotations.kinds.AnnotationSet`, which is how the
paper's interface assumptions enter the analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from .source import Location

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..annotations.kinds import AnnotationSet
    from .ctypes import CType


@dataclass
class Node:
    location: Location

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (used by generic walkers)."""
        for value in self.__dict__.values():
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item


def walk(node: Node) -> Iterator[Node]:
    """Pre-order traversal of the subtree rooted at *node*."""
    yield node
    for child in node.children():
        yield from walk(child)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int
    spelling: str = ""


@dataclass
class FloatLit(Expr):
    value: float
    spelling: str = ""


@dataclass
class CharLit(Expr):
    value: int
    spelling: str = ""


@dataclass
class StringLit(Expr):
    value: str  # decoded contents, without quotes
    spelling: str = ""


@dataclass
class Ident(Expr):
    name: str


@dataclass
class Unary(Expr):
    op: str  # one of: * & ! ~ - + ++ -- (prefix), p++ p-- (postfix)
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Assign(Expr):
    op: str  # '=', '+=', ...
    target: Expr
    value: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Call(Expr):
    func: Expr
    args: list[Expr]


@dataclass
class Member(Expr):
    obj: Expr
    fieldname: str
    arrow: bool  # True for '->', False for '.'


@dataclass
class Index(Expr):
    array: Expr
    index: Expr


@dataclass
class Cast(Expr):
    to_type: "CType"
    operand: Expr


@dataclass
class SizeofExpr(Expr):
    operand: Expr


@dataclass
class SizeofType(Expr):
    of_type: "CType"


@dataclass
class Comma(Expr):
    exprs: list[Expr]


@dataclass
class InitList(Expr):
    """A brace initializer list: ``{1, 2, 3}``."""

    items: list[Expr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class EmptyStmt(Stmt):
    pass


@dataclass
class Block(Stmt):
    items: list[Node] = field(default_factory=list)  # Stmt or Declaration
    end_location: Location | None = None  # location of the closing brace


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    orelse: Stmt | None


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr


@dataclass
class For(Stmt):
    init: Node | None  # ExprStmt or Declaration
    cond: Expr | None
    step: Expr | None
    body: Stmt


@dataclass
class Switch(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class Case(Stmt):
    value: Expr | None  # None => default
    body: Stmt


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None


@dataclass
class Goto(Stmt):
    label: str


@dataclass
class Label(Stmt):
    name: str
    body: Stmt


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Declarator(Node):
    """One declared name with its resolved type, annotations, and initializer."""

    name: str
    ctype: "CType"
    annotations: "AnnotationSet"
    init: Expr | None = None
    globals_list: list["GlobalUse"] = field(default_factory=list)
    modifies_list: list[str] | None = None  # None => no modifies clause


@dataclass
class Declaration(Node):
    """A declaration statement: zero or more declarators plus storage class."""

    declarators: list[Declarator]
    storage: str | None = None  # 'extern', 'static', 'typedef', 'register', 'auto'
    is_typedef: bool = False


@dataclass
class ParamDecl(Node):
    name: str | None
    ctype: "CType"
    annotations: "AnnotationSet"


@dataclass
class GlobalUse(Node):
    """One entry in a function's ``/*@globals ...@*/`` list."""

    name: str
    undef: bool = False  # global may be undefined at entry (paper: 'undef')
    killed: bool = False  # function releases the global's storage


@dataclass
class FunctionDef(Node):
    name: str
    ctype: "CType"  # a FunctionType
    params: list[ParamDecl]
    annotations: "AnnotationSet"  # return-value / function annotations
    body: Block
    storage: str | None = None
    globals_list: list[GlobalUse] = field(default_factory=list)
    modifies_list: list[str] | None = None  # None => no modifies clause


@dataclass
class TranslationUnit(Node):
    name: str
    items: list[Node] = field(default_factory=list)  # Declaration | FunctionDef

    def functions(self) -> list[FunctionDef]:
        return [item for item in self.items if isinstance(item, FunctionDef)]

    def declarations(self) -> list[Declaration]:
        return [item for item in self.items if isinstance(item, Declaration)]
