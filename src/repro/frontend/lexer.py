"""A C lexer that preserves LCLint annotation and control comments.

Ordinary comments are discarded. Comments of the form ``/*@ ... @*/`` are
the paper's *syntactic comments*: they carry interface annotations
(``/*@null@*/``, ``/*@only@*/``) and are emitted as ``ANNOTATION`` tokens
so the parser can attach them to declarations. Comments beginning with
``/*@i`` (ignore), ``/*@-``/``/*@+`` (flag settings), or ``/*@end@*/`` are
*control comments* and are emitted as ``CONTROL`` tokens consumed by the
message-suppression machinery.
"""

from __future__ import annotations

from .source import SourceFile
from .tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind


class LexError(Exception):
    """Raised on malformed input (unterminated string/comment, bad char)."""

    def __init__(self, message: str, location) -> None:
        super().__init__(f"{location}: {message}")
        self.location = location


def _is_control_payload(payload: str) -> bool:
    """Classify a ``/*@...@*/`` payload as a control comment.

    Control forms (LCLint user's guide): ``i`` / ``i<n>`` (ignore next
    message), ``ignore`` ... ``end`` (suppress a region), and ``-flag`` /
    ``+flag`` / ``=flag`` (local flag settings). Everything else — in
    particular the ``in`` definition annotation — is an annotation.
    """
    lowered = payload.lower()
    if lowered in ("ignore", "end", "i"):
        return True
    if lowered.startswith(("-", "+", "=")):
        return True
    return lowered.startswith("i") and lowered[1:].isdigit()


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Tokenize one source file.

    The lexer is line-oriented enough to support the preprocessor: it can
    be asked for raw lines, but its main interface is :meth:`tokens`,
    which yields every token in the file including a trailing EOF.
    """

    def __init__(self, source: SourceFile, keep_annotations: bool = True) -> None:
        self.source = source
        self.text = source.text
        self.pos = 0
        self.keep_annotations = keep_annotations

    # -- helpers ---------------------------------------------------------

    def _loc(self, offset: int | None = None):
        return self.source.location(self.pos if offset is None else offset)

    def _peek(self, ahead: int = 0) -> str:
        idx = self.pos + ahead
        # A sentinel (rather than "") keeps `self._peek() in "abc"` safe:
        # the empty string is a member of every string.
        return self.text[idx] if idx < len(self.text) else "\x00"

    def _starts_with(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    # -- scanning --------------------------------------------------------

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out

    def next_token(self) -> Token:
        self._skip_whitespace_and_plain_comments()
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", self._loc())

        start = self.pos
        ch = self._peek()

        if self._starts_with("/*@"):
            return self._scan_special_comment()
        if _is_ident_start(ch):
            return self._scan_identifier()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._scan_number()
        if ch == '"':
            return self._scan_string()
        if ch == "'":
            return self._scan_char()
        for punct in PUNCTUATORS:
            if self._starts_with(punct):
                self.pos += len(punct)
                return Token(TokenKind.PUNCT, punct, self._loc(start))
        raise LexError(f"unexpected character {ch!r}", self._loc(start))

    def _skip_whitespace_and_plain_comments(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n\f\v":
                self.pos += 1
            elif self._starts_with("/*@"):
                return
            elif self._starts_with("/*"):
                end = self.text.find("*/", self.pos + 2)
                if end == -1:
                    raise LexError("unterminated comment", self._loc())
                self.pos = end + 2
            elif self._starts_with("//"):
                end = self.text.find("\n", self.pos)
                self.pos = len(self.text) if end == -1 else end
            elif ch == "\\" and self._peek(1) == "\n":
                self.pos += 2
            else:
                return

    def _scan_special_comment(self) -> Token:
        start = self.pos
        end = self.text.find("*/", self.pos + 3)
        if end == -1:
            raise LexError("unterminated annotation comment", self._loc())
        body = self.text[self.pos + 3 : end]
        self.pos = end + 2
        # Annotation comments conventionally end with '@': /*@null@*/.
        payload = body[:-1].strip() if body.endswith("@") else body.strip()
        loc = self._loc(start)
        kind = TokenKind.CONTROL if _is_control_payload(payload) else TokenKind.ANNOTATION
        if not self.keep_annotations and kind is TokenKind.ANNOTATION:
            return self.next_token()
        return Token(kind, payload, loc)

    def _scan_identifier(self) -> Token:
        start = self.pos
        while self.pos < len(self.text) and _is_ident_char(self._peek()):
            self.pos += 1
        spelling = self.text[start : self.pos]
        kind = TokenKind.KEYWORD if spelling in KEYWORDS else TokenKind.IDENT
        return Token(kind, spelling, self._loc(start))

    def _scan_number(self) -> Token:
        start = self.pos
        is_float = False
        if self._starts_with("0x") or self._starts_with("0X"):
            self.pos += 2
            while self.pos < len(self.text) and self._peek() in "0123456789abcdefABCDEF":
                self.pos += 1
        else:
            while self.pos < len(self.text) and self._peek().isdigit():
                self.pos += 1
            if self._peek() == ".":
                is_float = True
                self.pos += 1
                while self.pos < len(self.text) and self._peek().isdigit():
                    self.pos += 1
            if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self.pos += 1
                if self._peek() in "+-":
                    self.pos += 1
                while self.pos < len(self.text) and self._peek().isdigit():
                    self.pos += 1
        while self._peek() in "uUlLfF":
            if self._peek() in "fF":
                is_float = True
            self.pos += 1
        spelling = self.text[start : self.pos]
        kind = TokenKind.FLOAT_CONST if is_float else TokenKind.INT_CONST
        return Token(kind, spelling, self._loc(start))

    def _scan_string(self) -> Token:
        start = self.pos
        self.pos += 1
        while True:
            if self.pos >= len(self.text):
                raise LexError("unterminated string literal", self._loc(start))
            ch = self._peek()
            if ch == "\\":
                self.pos += 2
            elif ch == '"':
                self.pos += 1
                break
            elif ch == "\n":
                raise LexError("newline in string literal", self._loc(start))
            else:
                self.pos += 1
        return Token(TokenKind.STRING, self.text[start : self.pos], self._loc(start))

    def _scan_char(self) -> Token:
        start = self.pos
        self.pos += 1
        while True:
            if self.pos >= len(self.text):
                raise LexError("unterminated character constant", self._loc(start))
            ch = self._peek()
            if ch == "\\":
                self.pos += 2
            elif ch == "'":
                self.pos += 1
                break
            elif ch == "\n":
                raise LexError("newline in character constant", self._loc(start))
            else:
                self.pos += 1
        return Token(TokenKind.CHAR_CONST, self.text[start : self.pos], self._loc(start))


def tokenize(source: SourceFile, keep_annotations: bool = True) -> list[Token]:
    """Convenience wrapper: lex an entire :class:`SourceFile`."""
    return Lexer(source, keep_annotations=keep_annotations).tokens()
