"""A C lexer that preserves LCLint annotation and control comments.

Ordinary comments are discarded. Comments of the form ``/*@ ... @*/`` are
the paper's *syntactic comments*: they carry interface annotations
(``/*@null@*/``, ``/*@only@*/``) and are emitted as ``ANNOTATION`` tokens
so the parser can attach them to declarations. Comments beginning with
``/*@i`` (ignore), ``/*@-``/``/*@+`` (flag settings), or ``/*@end@*/`` are
*control comments* and are emitted as ``CONTROL`` tokens consumed by the
message-suppression machinery.

Two scanners live here:

* :class:`Lexer` — the production scanner.  One compiled master regex
  (a single alternation covering whitespace, comments, identifiers,
  numbers, strings, chars, and every punctuator in reference precedence
  order) advances through the file match by match; tokens carry a
  ``(source, offset)`` pair and compute their ``Location`` lazily.

* :class:`ReferenceLexer` — the retained character-at-a-time scanner the
  project started with.  It is the executable specification: the parity
  suite asserts the two produce identical ``(kind, value, line, column)``
  streams, and when the master regex cannot match (exotic characters),
  the production scanner delegates a single token to the reference
  scanner so behaviour — including the exact ``LexError`` raised — stays
  identical by construction.

``lexer_engine("reference")`` switches the module default, which the
benchmark harness uses to run whole checks against the reference scanner.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from sys import intern as _intern

from .source import SourceFile
from .tokens import (
    KEYWORD_SPELLINGS,
    KEYWORDS,
    PUNCT_SPELLINGS,
    PUNCTUATORS,
    Token,
    TokenKind,
)


class LexError(Exception):
    """Raised on malformed input (unterminated string/comment, bad char)."""

    def __init__(self, message: str, location) -> None:
        super().__init__(f"{location}: {message}")
        self.location = location


def _is_control_payload(payload: str) -> bool:
    """Classify a ``/*@...@*/`` payload as a control comment.

    Control forms (LCLint user's guide): ``i`` / ``i<n>`` (ignore next
    message), ``ignore`` ... ``end`` (suppress a region), and ``-flag`` /
    ``+flag`` / ``=flag`` (local flag settings). Everything else — in
    particular the ``in`` definition annotation — is an annotation.
    """
    lowered = payload.lower()
    if lowered in ("ignore", "end", "i"):
        return True
    if lowered.startswith(("-", "+", "=")):
        return True
    return lowered.startswith("i") and lowered[1:].isdigit()


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


# -- the master regex ---------------------------------------------------------
#
# One compiled pattern per token: a *skip prefix* swallows whitespace,
# backslash-newline splices, and plain (non-``@``) comments, then a
# single alternation matches the token itself. Alternatives are tried
# left to right, so ordering encodes precedence: numbers before
# punctuators (``.5`` is a float, ``.`` alone a punctuator), ``/*@``
# before the ``/`` punctuator, and the punctuator branch joins
# PUNCTUATORS in tuple order, which reproduces the reference scanner's
# first-match (longest-spelling-first) semantics exactly.

_PUNCT_PATTERN = "|".join(re.escape(p) for p in PUNCTUATORS)

# The skip loop is *possessive* (``*+``, needs Python >= 3.11): once
# whitespace or a comment is consumed the regex engine may not backtrack
# into it to manufacture a token out of comment text when nothing
# follows (e.g. a file ending in a line comment).
_SKIP_PATTERN = r"""
    (?: [ \t\r\n\f\v]+
      | \\\n
      | //[^\n]*
      | /\*(?!@)[^*]*\*+(?:[^/*][^*]*\*+)*/
    )*+
"""

MASTER_REGEX = re.compile(
    _SKIP_PATTERN
    + r"""
    (?:
      (?P<IDENT>[^\W\d]\w*)
    | (?P<NUMBER>
          0[xX][0-9a-fA-F]*[uUlLfF]*
        | (?:[0-9]+(?:\.[0-9]*)?|\.[0-9]+)(?:[eE][+-]?[0-9]+)?[uUlLfF]*
      )
    | (?P<SPECIAL>/\*@)
    | (?P<STRING>"(?:[^"\\\n]|\\[\s\S])*")
    | (?P<CHAR>'(?:[^'\\\n]|\\[\s\S])*')
    | (?P<PUNCT>%s)
    )
    """
    % _PUNCT_PATTERN,
    re.VERBOSE,
)

_IDENT_I = MASTER_REGEX.groupindex["IDENT"]
_NUMBER_I = MASTER_REGEX.groupindex["NUMBER"]
_SPECIAL_I = MASTER_REGEX.groupindex["SPECIAL"]
_STRING_I = MASTER_REGEX.groupindex["STRING"]
_CHAR_I = MASTER_REGEX.groupindex["CHAR"]
_PUNCT_I = MASTER_REGEX.groupindex["PUNCT"]

_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


class Lexer:
    """Tokenize one source file with the compiled master regex.

    The main interface is :meth:`tokens`, which returns every token in
    the file including a trailing EOF.
    """

    def __init__(
        self,
        source: SourceFile,
        keep_annotations: bool = True,
        engine: str | None = None,
    ) -> None:
        self.source = source
        self.text = source.text
        self.pos = 0
        self.keep_annotations = keep_annotations
        self.engine = engine

    def tokens(self) -> list[Token]:
        engine = self.engine or _DEFAULT_ENGINE
        if engine == "reference":
            return ReferenceLexer(self.source, self.keep_annotations).tokens()
        return self._scan()

    # -- the hot loop ------------------------------------------------------

    def _scan(self) -> list[Token]:
        text = self.text
        src = self.source
        n = len(text)
        match = MASTER_REGEX.match
        keep = self.keep_annotations
        keywords = KEYWORD_SPELLINGS
        puncts = PUNCT_SPELLINGS
        intern = _intern
        find = text.find
        out: list[Token] = []
        append = out.append
        pos = 0

        ident = TokenKind.IDENT
        keyword = TokenKind.KEYWORD
        punct = TokenKind.PUNCT
        string = TokenKind.STRING
        char_const = TokenKind.CHAR_CONST

        while pos < n:
            m = match(text, pos)
            if m is None:
                # Trailing whitespace/comments, or a character no branch
                # matches: the reference scanner decides (and diagnoses).
                pos = self._slow_token(out, pos)
                continue
            i = m.lastindex
            end = m.end()
            value = m.group(i)
            start = end - len(value)
            if i == _IDENT_I:
                canon = keywords.get(value)
                if canon is not None:
                    append(Token(keyword, canon, None, src, start))
                else:
                    append(
                        Token(ident, intern(value), None, src, start)
                    )
            elif i == _PUNCT_I:
                if value == "/" and text.startswith("/*", start):
                    # The comment skip failed to close: unterminated /* ... .
                    raise LexError("unterminated comment", src.location(start))
                append(Token(punct, puncts[value], None, src, start))
            elif i == _NUMBER_I:
                append(
                    Token(
                        self._number_kind(value, start),
                        value,
                        None,
                        source=src,
                        offset=start,
                    )
                )
            elif i == _STRING_I:
                append(Token(string, value, None, src, start))
            elif i == _CHAR_I:
                append(Token(char_const, value, None, src, start))
            else:  # SPECIAL: /*@ annotation or control comment
                close = find("*/", start + 3)
                if close == -1:
                    raise LexError(
                        "unterminated annotation comment", src.location(start)
                    )
                body = text[start + 3 : close]
                payload = (
                    body[:-1].strip() if body.endswith("@") else body.strip()
                )
                if _is_control_payload(payload):
                    append(
                        Token(
                            TokenKind.CONTROL, payload, None, src, start,
                        )
                    )
                elif keep:
                    append(
                        Token(
                            TokenKind.ANNOTATION, payload, None, src, start,
                        )
                    )
                pos = close + 2
                continue
            pos = end

        append(Token(TokenKind.EOF, "", None, src, n))
        return out

    def _number_kind(self, spelling: str, pos: int) -> TokenKind:
        """INT vs FLOAT classification, matching the reference scanner.

        Hex constants are floats only when a suffix *after* the maximal
        hex-digit run contains ``f``/``F`` (``0x1F`` is an int — the F is
        a digit; ``0x1UF`` is the reference scanner's float). A hex
        prefix with no digits at all is malformed.
        """
        if spelling[1:2] in ("x", "X"):
            i = 2
            size = len(spelling)
            while i < size and spelling[i] in _HEX_DIGITS:
                i += 1
            if i == 2:
                raise LexError(
                    "hexadecimal constant has no digits",
                    self.source.location(pos),
                )
            suffix = spelling[i:]
            if "f" in suffix or "F" in suffix:
                return TokenKind.FLOAT_CONST
            return TokenKind.INT_CONST
        for ch in spelling:
            if ch in ".eEfF":
                return TokenKind.FLOAT_CONST
        return TokenKind.INT_CONST

    def _slow_token(self, out: list[Token], pos: int) -> int:
        """Regex miss: delegate one token to the reference scanner.

        This keeps behaviour on exotic inputs (Unicode identifier
        characters, stray bytes) — and every diagnostic — identical to
        the reference scanner, which raises the precise ``LexError``.
        """
        ref = ReferenceLexer(self.source, keep_annotations=self.keep_annotations)
        ref.pos = pos
        tok = ref.next_token()
        if tok.kind is not TokenKind.EOF:
            out.append(tok)
        return ref.pos


class ReferenceLexer:
    """The retained character-at-a-time scanner (executable specification).

    Kept verbatim from the original implementation apart from two fixes
    shared with the production scanner: annotation skipping is a loop
    (not recursion), and a hex prefix without digits is a ``LexError``.
    """

    def __init__(self, source: SourceFile, keep_annotations: bool = True) -> None:
        self.source = source
        self.text = source.text
        self.pos = 0
        self.keep_annotations = keep_annotations

    # -- helpers ---------------------------------------------------------

    def _loc(self, offset: int | None = None):
        return self.source.location(self.pos if offset is None else offset)

    def _peek(self, ahead: int = 0) -> str:
        idx = self.pos + ahead
        # A sentinel (rather than "") keeps `self._peek() in "abc"` safe:
        # the empty string is a member of every string.
        return self.text[idx] if idx < len(self.text) else "\x00"

    def _starts_with(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    # -- scanning --------------------------------------------------------

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out

    def next_token(self) -> Token:
        # Dropped annotations are skipped with a loop: a long run of
        # /*@...@*/ comments must not recurse once per comment.
        while True:
            self._skip_whitespace_and_plain_comments()
            if self.pos >= len(self.text):
                return Token(
                    TokenKind.EOF, "", source=self.source, offset=self.pos
                )

            start = self.pos
            ch = self._peek()

            if self._starts_with("/*@"):
                tok = self._scan_special_comment()
                if tok is None:
                    continue
                return tok
            if _is_ident_start(ch):
                return self._scan_identifier()
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                return self._scan_number()
            if ch == '"':
                return self._scan_string()
            if ch == "'":
                return self._scan_char()
            for punct in PUNCTUATORS:
                if self._starts_with(punct):
                    self.pos += len(punct)
                    return Token(
                        TokenKind.PUNCT,
                        PUNCT_SPELLINGS[punct],
                        source=self.source,
                        offset=start,
                    )
            raise LexError(f"unexpected character {ch!r}", self._loc(start))

    def _skip_whitespace_and_plain_comments(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n\f\v":
                self.pos += 1
            elif self._starts_with("/*@"):
                return
            elif self._starts_with("/*"):
                end = self.text.find("*/", self.pos + 2)
                if end == -1:
                    raise LexError("unterminated comment", self._loc())
                self.pos = end + 2
            elif self._starts_with("//"):
                end = self.text.find("\n", self.pos)
                self.pos = len(self.text) if end == -1 else end
            elif ch == "\\" and self._peek(1) == "\n":
                self.pos += 2
            else:
                return

    def _scan_special_comment(self) -> Token | None:
        start = self.pos
        end = self.text.find("*/", self.pos + 3)
        if end == -1:
            raise LexError("unterminated annotation comment", self._loc())
        body = self.text[self.pos + 3 : end]
        self.pos = end + 2
        # Annotation comments conventionally end with '@': /*@null@*/.
        payload = body[:-1].strip() if body.endswith("@") else body.strip()
        kind = (
            TokenKind.CONTROL
            if _is_control_payload(payload)
            else TokenKind.ANNOTATION
        )
        if not self.keep_annotations and kind is TokenKind.ANNOTATION:
            return None
        return Token(kind, payload, source=self.source, offset=start)

    def _scan_identifier(self) -> Token:
        start = self.pos
        while self.pos < len(self.text) and _is_ident_char(self._peek()):
            self.pos += 1
        spelling = self.text[start : self.pos]
        if spelling in KEYWORDS:
            return Token(
                TokenKind.KEYWORD,
                KEYWORD_SPELLINGS[spelling],
                source=self.source,
                offset=start,
            )
        return Token(
            TokenKind.IDENT, _intern(spelling), source=self.source, offset=start
        )

    def _scan_number(self) -> Token:
        start = self.pos
        is_float = False
        if self._starts_with("0x") or self._starts_with("0X"):
            self.pos += 2
            digits = 0
            while self.pos < len(self.text) and self._peek() in "0123456789abcdefABCDEF":
                self.pos += 1
                digits += 1
            if digits == 0:
                raise LexError(
                    "hexadecimal constant has no digits", self._loc(start)
                )
        else:
            while self.pos < len(self.text) and self._peek().isdigit():
                self.pos += 1
            if self._peek() == ".":
                is_float = True
                self.pos += 1
                while self.pos < len(self.text) and self._peek().isdigit():
                    self.pos += 1
            if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                is_float = True
                self.pos += 1
                if self._peek() in "+-":
                    self.pos += 1
                while self.pos < len(self.text) and self._peek().isdigit():
                    self.pos += 1
        while self._peek() in "uUlLfF":
            if self._peek() in "fF":
                is_float = True
            self.pos += 1
        spelling = self.text[start : self.pos]
        kind = TokenKind.FLOAT_CONST if is_float else TokenKind.INT_CONST
        return Token(kind, spelling, source=self.source, offset=start)

    def _scan_string(self) -> Token:
        start = self.pos
        self.pos += 1
        while True:
            if self.pos >= len(self.text):
                raise LexError("unterminated string literal", self._loc(start))
            ch = self._peek()
            if ch == "\\":
                self.pos += 2
            elif ch == '"':
                self.pos += 1
                break
            elif ch == "\n":
                raise LexError("newline in string literal", self._loc(start))
            else:
                self.pos += 1
        return Token(
            TokenKind.STRING,
            self.text[start : self.pos],
            source=self.source,
            offset=start,
        )

    def _scan_char(self) -> Token:
        start = self.pos
        self.pos += 1
        while True:
            if self.pos >= len(self.text):
                raise LexError(
                    "unterminated character constant", self._loc(start)
                )
            ch = self._peek()
            if ch == "\\":
                self.pos += 2
            elif ch == "'":
                self.pos += 1
                break
            elif ch == "\n":
                raise LexError(
                    "newline in character constant", self._loc(start)
                )
            else:
                self.pos += 1
        return Token(
            TokenKind.CHAR_CONST,
            self.text[start : self.pos],
            source=self.source,
            offset=start,
        )


# -- engine selection ---------------------------------------------------------

_DEFAULT_ENGINE = "regex"


@contextmanager
def lexer_engine(name: str):
    """Temporarily switch the module-default scanning engine.

    ``name`` is ``"regex"`` (production) or ``"reference"`` (the retained
    character-at-a-time scanner). The benchmark harness uses this to run
    complete checks against the reference scanner for parity and speedup
    measurements.
    """
    global _DEFAULT_ENGINE
    if name not in ("regex", "reference"):
        raise ValueError(f"unknown lexer engine {name!r}")
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = name
    try:
        yield
    finally:
        _DEFAULT_ENGINE = previous


def tokenize(
    source: SourceFile, keep_annotations: bool = True, engine: str | None = None
) -> list[Token]:
    """Convenience wrapper: lex an entire :class:`SourceFile`."""
    return Lexer(source, keep_annotations=keep_annotations, engine=engine).tokens()


def reference_tokenize(
    source: SourceFile, keep_annotations: bool = True
) -> list[Token]:
    """Lex with the retained reference scanner (parity/spec baseline)."""
    return ReferenceLexer(source, keep_annotations=keep_annotations).tokens()
