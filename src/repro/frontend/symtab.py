"""File-scope symbol information used by the checker and the interpreter.

The paper's analysis is purely modular: when checking a function body,
the only information available about other functions is their *interface*
— the declared types plus annotations. :class:`SymbolTable` collects
exactly that interface from a translation unit (and from the annotated
standard library and any interface libraries loaded by the driver).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..annotations.kinds import AnnotationSet
from . import cast as A
from .ctypes import CType, FunctionType, ParamType, strip_typedefs
from .source import BUILTIN_LOCATION, Location


@dataclass
class FunctionSignature:
    """Everything a call site may assume about a function (paper section 2)."""

    name: str
    ret_type: CType
    ret_annotations: AnnotationSet
    params: list[ParamType]
    variadic: bool = False
    old_style: bool = False
    globals_list: list[A.GlobalUse] = field(default_factory=list)
    modifies_list: list[str] | None = None
    location: Location = BUILTIN_LOCATION
    has_definition: bool = False

    @property
    def is_truenull(self) -> bool:
        return self.ret_annotations.truenull

    @property
    def is_falsenull(self) -> bool:
        return self.ret_annotations.falsenull


@dataclass
class GlobalVariable:
    name: str
    ctype: CType
    annotations: AnnotationSet
    location: Location = BUILTIN_LOCATION
    storage: str | None = None
    has_initializer: bool = False


class SymbolTable:
    """Interface information for one checking run."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionSignature] = {}
        self.globals: dict[str, GlobalVariable] = {}

    # -- construction -------------------------------------------------------

    def add_unit(self, unit: A.TranslationUnit) -> None:
        for item in unit.items:
            if isinstance(item, A.FunctionDef):
                self.add_function_def(item)
            elif isinstance(item, A.Declaration):
                self.add_declaration(item)

    def add_declaration(self, decl: A.Declaration) -> None:
        if decl.is_typedef:
            return
        for dtor in decl.declarators:
            actual = strip_typedefs(dtor.ctype)
            if isinstance(actual, FunctionType):
                self._add_function_decl(dtor, actual)
            else:
                self._add_global(dtor, decl.storage)

    def _add_function_decl(self, dtor: A.Declarator, ftype: FunctionType) -> None:
        existing = self.functions.get(dtor.name)
        if existing is not None and existing.has_definition:
            return  # the definition's interface wins
        sig = FunctionSignature(
            name=dtor.name,
            ret_type=ftype.ret,
            ret_annotations=dtor.annotations,
            params=list(ftype.params),
            variadic=ftype.variadic,
            old_style=ftype.old_style,
            globals_list=list(dtor.globals_list),
            modifies_list=(
                list(dtor.modifies_list)
                if dtor.modifies_list is not None
                else None
            ),
            location=dtor.location,
        )
        if existing is not None:
            sig = _merge_signatures(existing, sig)
        self.functions[dtor.name] = sig

    def add_function_def(self, fdef: A.FunctionDef) -> None:
        ftype = strip_typedefs(fdef.ctype)
        assert isinstance(ftype, FunctionType)
        params = [
            ParamType(p.name, p.ctype, p.annotations) for p in fdef.params
        ]
        sig = FunctionSignature(
            name=fdef.name,
            ret_type=ftype.ret,
            ret_annotations=fdef.annotations,
            params=params,
            variadic=ftype.variadic,
            old_style=ftype.old_style,
            globals_list=list(fdef.globals_list),
            modifies_list=(
                list(fdef.modifies_list)
                if fdef.modifies_list is not None
                else None
            ),
            location=fdef.location,
            has_definition=True,
        )
        existing = self.functions.get(fdef.name)
        if existing is not None and not existing.has_definition:
            sig = _merge_signatures(sig, existing, prefer_first=True)
        self.functions[fdef.name] = sig

    def _add_global(self, dtor: A.Declarator, storage: str | None) -> None:
        existing = self.globals.get(dtor.name)
        gvar = GlobalVariable(
            name=dtor.name,
            ctype=dtor.ctype,
            annotations=dtor.annotations,
            location=dtor.location,
            storage=storage,
            has_initializer=dtor.init is not None,
        )
        if existing is not None:
            # extern declaration + definition: keep the richer annotations
            if existing.annotations.is_empty() and not dtor.annotations.is_empty():
                existing.annotations = dtor.annotations
            existing.has_initializer = existing.has_initializer or gvar.has_initializer
            return
        self.globals[dtor.name] = gvar

    # -- merging --------------------------------------------------------------

    def merge_interface(self, other: "SymbolTable") -> None:
        """Merge another table's interface slice into this one.

        Replicates the precedence of adding the underlying declarations
        sequentially with :meth:`add_unit`: a later declaration's
        annotations win over an earlier declaration's, a definition's
        interface wins over any declaration, and declarations seen after
        a definition are ignored. This is what lets the incremental
        engine rebuild the program symbol table from cached per-unit
        interface slices without reparsing every unit.
        """
        for name, sig in other.functions.items():
            existing = self.functions.get(name)
            if existing is None:
                merged = sig
            elif existing.has_definition and not sig.has_definition:
                continue
            elif sig.has_definition and not existing.has_definition:
                merged = _merge_signatures(sig, existing, prefer_first=True)
            elif sig.has_definition and existing.has_definition:
                merged = sig
            else:
                merged = _merge_signatures(existing, sig)
            self.functions[name] = merged
        for name, gvar in other.globals.items():
            existing = self.globals.get(name)
            if existing is None:
                self.globals[name] = gvar
                continue
            if existing.annotations.is_empty() and not gvar.annotations.is_empty():
                existing.annotations = gvar.annotations
            existing.has_initializer = (
                existing.has_initializer or gvar.has_initializer
            )

    # -- queries --------------------------------------------------------------

    def function(self, name: str) -> FunctionSignature | None:
        return self.functions.get(name)

    def global_var(self, name: str) -> GlobalVariable | None:
        return self.globals.get(name)


def _merge_signatures(
    primary: FunctionSignature,
    secondary: FunctionSignature,
    prefer_first: bool = False,
) -> FunctionSignature:
    """Merge a redeclaration into an existing signature.

    Annotations accumulate: a prototype in a header usually carries the
    interface annotations, while the definition may carry none. Unset
    categories flow from the other declaration.
    """
    first, second = (primary, secondary) if prefer_first else (secondary, primary)
    merged_ret = first.ret_annotations.merged_under(second.ret_annotations)
    params: list[ParamType] = []
    for i, param in enumerate(first.params):
        other = second.params[i] if i < len(second.params) else None
        anns = param.annotations
        if other is not None:
            anns = anns.merged_under(other.annotations)
        params.append(ParamType(param.name, param.ctype, anns))
    return FunctionSignature(
        name=first.name,
        ret_type=first.ret_type,
        ret_annotations=merged_ret,
        params=params,
        variadic=first.variadic or second.variadic,
        old_style=first.old_style and second.old_style,
        globals_list=first.globals_list or second.globals_list,
        modifies_list=(
            first.modifies_list
            if first.modifies_list is not None
            else second.modifies_list
        ),
        location=first.location,
        has_definition=first.has_definition or second.has_definition,
    )
