"""repro: reproduction of "Static Detection of Dynamic Memory Errors".

An annotation-based static checker for C memory errors (Evans, PLDI
1996), with a from-scratch C frontend, the LCLint storage-model analysis,
an annotated standard library, and a run-time checking baseline.
"""

from .core.api import CheckResult, Checker, check_files, check_source
from .flags.registry import FLAG_REGISTRY, Flags
from .messages.message import Message, MessageCode

__version__ = "1.0.0"

__all__ = [
    "CheckResult",
    "Checker",
    "check_files",
    "check_source",
    "Flags",
    "FLAG_REGISTRY",
    "Message",
    "MessageCode",
    "__version__",
]
