"""The annotated ANSI standard library (paper section 4, Appendix B).

"The standard library provides some allocation and deallocation
routines. The basic allocator, malloc, is specified as
``null out only void *malloc (size_t size)``. The deallocator, free, is
specified as ``void free (null out only void *ptr)``. There is nothing
special about malloc and free — their behavior can be described entirely
in terms of the provided annotations."

The specifications below are written as annotated C declarations and
parsed by this package's own frontend — the same mechanism user code
uses, which keeps the standard library honest.
"""

from __future__ import annotations

PRELUDE_NAME = "<standard-library>"

#: Macro definitions every translation unit sees (LCLint's builtins).
PRELUDE_DEFINES: dict[str, str] = {
    "NULL": "((void *)0)",
    "TRUE": "1",
    "FALSE": "0",
    "EXIT_SUCCESS": "0",
    "EXIT_FAILURE": "1",
    "EOF": "(-1)",
    "RAND_MAX": "32767",
}

_TYPES = """
typedef unsigned long size_t;
typedef int bool;
typedef long ptrdiff_t;
typedef struct _FILE { int _fileno; } FILE;
"""

_STDLIB = """
extern /*@null@*/ /*@out@*/ /*@only@*/ void *malloc(size_t size);
extern /*@null@*/ /*@only@*/ void *calloc(size_t nmemb, size_t size);
extern /*@null@*/ /*@out@*/ /*@only@*/ void *
    realloc(/*@null@*/ /*@only@*/ void *ptr, size_t size);
extern void free(/*@null@*/ /*@out@*/ /*@only@*/ void *ptr);
extern void exit(int status);
extern void abort(void);
extern int abs(int j);
extern long labs(long j);
extern int atoi(/*@temp@*/ char *nptr);
extern long atol(/*@temp@*/ char *nptr);
extern double atof(/*@temp@*/ char *nptr);
extern int rand(void);
extern void srand(unsigned int seed);
extern /*@null@*/ /*@observer@*/ char *getenv(/*@temp@*/ char *name);
extern int system(/*@null@*/ /*@temp@*/ char *command);
"""

_STRING = """
extern /*@out@*/ /*@returned@*/ /*@unique@*/ char *
    strcpy(/*@out@*/ /*@returned@*/ /*@unique@*/ char *s1, /*@temp@*/ char *s2);
extern /*@returned@*/ char *
    strncpy(/*@out@*/ /*@returned@*/ /*@unique@*/ char *s1,
            /*@temp@*/ char *s2, size_t n);
extern /*@returned@*/ /*@unique@*/ char *
    strcat(/*@returned@*/ /*@unique@*/ char *s1, /*@temp@*/ char *s2);
extern /*@returned@*/ char *
    strncat(/*@returned@*/ /*@unique@*/ char *s1, /*@temp@*/ char *s2, size_t n);
extern int strcmp(/*@temp@*/ char *s1, /*@temp@*/ char *s2);
extern int strncmp(/*@temp@*/ char *s1, /*@temp@*/ char *s2, size_t n);
extern size_t strlen(/*@temp@*/ char *s);
extern /*@null@*/ /*@exposed@*/ char *strchr(/*@returned@*/ char *s, int c);
extern /*@null@*/ /*@exposed@*/ char *strrchr(/*@returned@*/ char *s, int c);
extern /*@null@*/ /*@exposed@*/ char *
    strstr(/*@returned@*/ char *haystack, /*@temp@*/ char *needle);
extern /*@returned@*/ void *
    memcpy(/*@out@*/ /*@returned@*/ /*@unique@*/ void *s1,
           /*@temp@*/ void *s2, size_t n);
extern /*@returned@*/ void *
    memmove(/*@out@*/ /*@returned@*/ void *s1, /*@temp@*/ void *s2, size_t n);
extern /*@returned@*/ void *
    memset(/*@out@*/ /*@returned@*/ void *s, int c, size_t n);
extern int memcmp(/*@temp@*/ void *s1, /*@temp@*/ void *s2, size_t n);
"""

_STDIO = """
extern /*@null@*/ /*@only@*/ FILE *
    fopen(/*@temp@*/ char *filename, /*@temp@*/ char *mode);
extern int fclose(/*@only@*/ FILE *stream);
extern int fflush(/*@null@*/ /*@temp@*/ FILE *stream);
extern int printf(/*@temp@*/ char *format, ...);
extern int fprintf(/*@temp@*/ FILE *stream, /*@temp@*/ char *format, ...);
extern int sprintf(/*@out@*/ /*@unique@*/ char *s, /*@temp@*/ char *format, ...);
extern int scanf(/*@temp@*/ char *format, ...);
extern int fscanf(/*@temp@*/ FILE *stream, /*@temp@*/ char *format, ...);
extern int sscanf(/*@temp@*/ char *s, /*@temp@*/ char *format, ...);
extern int getchar(void);
extern int putchar(int c);
extern int getc(/*@temp@*/ FILE *stream);
extern int putc(int c, /*@temp@*/ FILE *stream);
extern int fgetc(/*@temp@*/ FILE *stream);
extern int fputc(int c, /*@temp@*/ FILE *stream);
extern int fputs(/*@temp@*/ char *s, /*@temp@*/ FILE *stream);
extern int puts(/*@temp@*/ char *s);
extern /*@null@*/ /*@returned@*/ char *
    fgets(/*@out@*/ /*@returned@*/ char *s, int n, /*@temp@*/ FILE *stream);
extern size_t fread(/*@out@*/ void *ptr, size_t size, size_t nmemb,
                    /*@temp@*/ FILE *stream);
extern size_t fwrite(/*@temp@*/ void *ptr, size_t size, size_t nmemb,
                     /*@temp@*/ FILE *stream);
extern int remove(/*@temp@*/ char *filename);
extern int rename(/*@temp@*/ char *old, /*@temp@*/ char *new_name);
"""

_ASSERT = """
extern void assert(int expression);
"""

#: The prelude every checking run parses before user code.
PRELUDE_TEXT = _TYPES + _STDLIB + _STRING + _STDIO + _ASSERT

#: Contents served for #include <...> of standard headers. Each header
#: re-declares its slice; redeclarations merge in the symbol table.
SYSTEM_HEADERS: dict[str, str] = {
    "stdlib.h": _TYPES + _STDLIB,
    "string.h": _TYPES + _STRING,
    "stdio.h": _TYPES + _STDIO,
    "assert.h": _ASSERT,
    "stddef.h": _TYPES,
    "stdarg.h": "typedef char *va_list;\n",
    "limits.h": "\n",
    "ctype.h": (
        "extern int isalpha(int c);\nextern int isdigit(int c);\n"
        "extern int isspace(int c);\nextern int isupper(int c);\n"
        "extern int islower(int c);\nextern int toupper(int c);\n"
        "extern int tolower(int c);\n"
    ),
    "bool.h": "typedef int bool;\n",
    "math.h": (
        "extern double sqrt(double x);\nextern double pow(double x, double y);\n"
        "extern double fabs(double x);\nextern double floor(double x);\n"
        "extern double ceil(double x);\n"
    ),
}

# Headers above whose every declaration line already appears in
# PRELUDE_TEXT. Since the parsed prelude is merged into every program
# symbol table ahead of the units (and unit parsers are pre-seeded with
# its typedefs/tags/enum constants), including one of these headers adds
# no information a unit check can observe -- the preprocessor can skip
# splicing their tokens entirely, which removes the dominant share of
# every unit's cold-path token volume. Computed, not hand-listed, so a
# header gaining a declaration the prelude lacks drops out automatically.
_PRELUDE_LINES = frozenset(
    line for line in PRELUDE_TEXT.splitlines() if line.strip()
)

PRELUDE_COVERED_HEADERS: frozenset[str] = frozenset(
    name
    for name, text in SYSTEM_HEADERS.items()
    if all(
        line in _PRELUDE_LINES
        for line in text.splitlines()
        if line.strip()
    )
)
