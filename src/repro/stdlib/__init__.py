"""Annotated ANSI standard library specifications."""

from .specs import PRELUDE_DEFINES, PRELUDE_NAME, PRELUDE_TEXT, SYSTEM_HEADERS

__all__ = ["PRELUDE_DEFINES", "PRELUDE_NAME", "PRELUDE_TEXT", "SYSTEM_HEADERS"]
