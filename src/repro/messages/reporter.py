"""Collecting, filtering, and formatting checker messages."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..flags.registry import DEFAULT_FLAGS, Flags
from ..frontend.source import Location
from .message import Message, MessageCode, SubLocation
from .suppress import SuppressionTable


@dataclass
class Reporter:
    """Accumulates messages during a checking run.

    Messages are deduplicated (the analysis may traverse shared subtrees
    more than once), filtered by flags and suppression tables, and sorted
    into source order for output.
    """

    flags: Flags = field(default_factory=lambda: DEFAULT_FLAGS)
    messages: list[Message] = field(default_factory=list)
    suppressed_count: int = 0
    _seen: set[tuple] = field(default_factory=set)

    def report(
        self,
        code: MessageCode,
        location: Location,
        text: str,
        subs: list[tuple[Location, str]] | None = None,
    ) -> None:
        if not self.flags.enabled(code.flag):
            self.suppressed_count += 1
            return
        key = (code, location, text)
        if key in self._seen:
            return
        self._seen.add(key)
        self.messages.append(
            Message(
                code,
                location,
                text,
                tuple(SubLocation(loc, t) for loc, t in (subs or [])),
            )
        )

    def apply_suppressions(self, table: SuppressionTable) -> None:
        kept, dropped = table.filter(self.messages)
        self.messages = kept
        self.suppressed_count += dropped

    def sorted_messages(self) -> list[Message]:
        return sorted(self.messages, key=Message.sort_key)

    def by_code(self) -> dict[MessageCode, list[Message]]:
        out: dict[MessageCode, list[Message]] = {}
        for msg in self.sorted_messages():
            out.setdefault(msg.code, []).append(msg)
        return out

    def render(self) -> str:
        parts = [msg.render() for msg in self.sorted_messages()]
        summary = f"\n{len(self.messages)} code warning(s)" if parts else ""
        return "\n".join(parts) + summary

    def __len__(self) -> int:
        return len(self.messages)
