"""Messages, reporting, and stylized-comment suppression."""

from .message import Message, MessageCode, SubLocation
from .reporter import Reporter
from .suppress import SuppressionTable

__all__ = ["Message", "MessageCode", "SubLocation", "Reporter", "SuppressionTable"]
