"""Checker messages.

LCLint messages have a two-part shape (paper footnote 3): a primary line
explaining the anomaly and where it is detected, plus indented sub-lines
showing where relevant state changes happened::

    sample.c:6: Function returns with non-null global gname referencing
        null storage
       sample.c:5: Storage gname may become null

Every message carries a :class:`MessageCode`, which names the check class
(and thereby the flag that suppresses it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..frontend.source import Location


class MessageCode(enum.Enum):
    """Check classes; each maps to the flag that controls it."""

    NULL_DEREF = ("null-deref", "null")
    NULL_RET_GLOBAL = ("null-ret-global", "null")
    NULL_RET_VALUE = ("null-ret-value", "null")
    NULL_PARAM = ("null-param", "null")
    USE_BEFORE_DEF = ("use-before-def", "usedef")
    INCOMPLETE_DEF = ("incomplete-def", "compdef")
    PARAM_NOT_DEFINED = ("param-not-defined", "compdef")
    USE_AFTER_RELEASE = ("use-after-release", "usereleased")
    LEAK_OVERWRITE = ("leak-overwrite", "mustfree")
    LEAK_SCOPE = ("leak-scope", "mustfree")
    LEAK_RETURN = ("leak-return", "mustfree")
    LEAK_RESULT = ("leak-result", "mustfree")
    GLOBAL_RELEASED = ("global-released", "globstate")
    ONLY_NOT_RELEASED = ("only-not-released", "mustfree")
    TEMP_TO_ONLY = ("temp-to-only", "memtrans")
    BAD_TRANSFER = ("bad-transfer", "memtrans")
    IMPLICIT_TRANSFER = ("implicit-transfer", "memimplicit")
    CONFLUENCE = ("confluence", "branchstate")
    UNIQUE_ALIAS = ("unique-alias", "aliasunique")
    TEMP_ALIAS = ("temp-alias", "aliasunique")
    OBSERVER_MODIFIED = ("observer-modified", "observertrans")
    ANNOTATION_PROBLEM = ("annotation-problem", "annotations")
    GLOBAL_UNDEFINED = ("global-undefined", "globstate")
    RET_VAL_IGNORED = ("ret-val-ignored", "retvalother")
    MODIFIES = ("modifies", "mods")
    ARRAY_BOUNDS = ("array-bounds", "bounds")
    UNINIT_FIELD = ("uninit-field", "fielddef")
    DOUBLE_RELEASE = ("double-release", "aliasfree")
    PARSE_ERROR = ("parse-error", "syntax")
    INTERNAL_ERROR = ("internal-error", "internal")

    def __init__(self, slug: str, flag: str) -> None:
        self.slug = slug
        self.flag = flag

    @classmethod
    def from_slug(cls, slug: str) -> "MessageCode":
        try:
            return _CODE_BY_SLUG[slug]
        except KeyError:
            raise ValueError(f"unknown message code slug {slug!r}") from None

    @property
    def error_class(self) -> str | None:
        """The dynamic memory-error class this code evidences, if any.

        See :data:`MEMORY_ERROR_CLASSES` for the vocabulary and caveats.
        """
        return MEMORY_ERROR_CLASSES.get(self)


_CODE_BY_SLUG: dict[str, MessageCode] = {code.slug: code for code in MessageCode}


#: The dynamic memory-error class each static message code evidences, in
#: the vocabulary of :class:`repro.runtime.heap.RuntimeEventKind` (the
#: difftest verdict comparer aligns the two detectors through it). The
#: mapping is canonical one-to-one: ``USE_AFTER_RELEASE`` maps to
#: ``use-after-free`` even though the checker reports *direct* double
#: frees under the same code (freeing *is* a use of released storage),
#: and ``BAD_TRANSFER`` maps to ``invalid-free`` even though it also
#: covers other ownership-transfer errors. A double free reached through
#: an alias (``q = p; free(p); free(q);``) gets its own code,
#: ``DOUBLE_RELEASE``, and its own class. Codes with no dynamic
#: counterpart (style, parse, annotation problems) are absent.
MEMORY_ERROR_CLASSES: dict[MessageCode, str] = {
    MessageCode.NULL_DEREF: "null-dereference",
    MessageCode.USE_BEFORE_DEF: "uninitialized-read",
    MessageCode.USE_AFTER_RELEASE: "use-after-free",
    MessageCode.LEAK_OVERWRITE: "leak",
    MessageCode.LEAK_SCOPE: "leak",
    MessageCode.LEAK_RETURN: "leak",
    MessageCode.LEAK_RESULT: "leak",
    MessageCode.ONLY_NOT_RELEASED: "leak",
    MessageCode.BAD_TRANSFER: "invalid-free",
    MessageCode.ARRAY_BOUNDS: "out-of-bounds",
    MessageCode.UNINIT_FIELD: "uninit-field-read",
    MessageCode.DOUBLE_RELEASE: "double-free-alias",
}


@dataclass(frozen=True)
class SubLocation:
    location: Location
    text: str


@dataclass(frozen=True)
class Message:
    """One reported anomaly."""

    code: MessageCode
    location: Location
    text: str
    subs: tuple[SubLocation, ...] = field(default=())

    def render(self) -> str:
        lines = [f"{self.location}: {self.text}"]
        for sub in self.subs:
            lines.append(f"   {sub.location}: {sub.text}")
        return "\n".join(lines)

    def sort_key(self) -> tuple:
        return (self.location.filename, self.location.line,
                self.location.column, self.code.slug, self.text)

    # -- serialization (used by the incremental result cache) ---------------

    def to_dict(self) -> dict:
        """A JSON-safe representation preserving locations exactly."""
        return {
            "code": self.code.slug,
            "location": _location_to_list(self.location),
            "text": self.text,
            "subs": [
                [_location_to_list(sub.location), sub.text]
                for sub in self.subs
            ],
        }

    @staticmethod
    def from_dict(data: dict) -> "Message":
        return Message(
            code=MessageCode.from_slug(data["code"]),
            location=_location_from_list(data["location"]),
            text=data["text"],
            subs=tuple(
                SubLocation(_location_from_list(loc), text)
                for loc, text in data.get("subs", [])
            ),
        )

    def __str__(self) -> str:
        return self.render()


def _location_to_list(loc: Location) -> list:
    return [loc.filename, loc.line, loc.column]


def _location_from_list(data: list) -> Location:
    filename, line, column = data
    return Location(str(filename), int(line), int(column))
