"""Message suppression via stylized control comments (paper sections 2, 7).

"Since spurious messages can be suppressed locally by placing stylized
comments around the code that produces the message, this unsoundness has
rarely been a serious problem in practice." Section 7 reports 75 such
suppressions in LCLint's own source.

Supported forms (from the LCLint user's guide):

* ``/*@ignore@*/`` ... ``/*@end@*/`` — suppress all messages in the region.
* ``/*@i@*/`` — suppress messages reported on the same line.
* ``/*@i<n>@*/`` — suppress up to *n* messages on the same line.
* ``/*@-flag@*/`` ... ``/*@+flag@*/`` — turn a check class off/on locally.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..flags.registry import FLAG_REGISTRY
from ..frontend.tokens import Token, TokenKind
from .message import Message


@dataclass
class _Region:
    filename: str
    start_line: int
    end_line: int  # inclusive; a large sentinel when unterminated
    flag: str | None  # None => suppress everything


@dataclass
class _LineIgnore:
    filename: str
    line: int
    budget: int  # how many messages may be swallowed


_OPEN_END = 10**9


class SuppressionTable:
    """Suppression state harvested from a file's control tokens."""

    def __init__(self) -> None:
        self.regions: list[_Region] = []
        self.line_ignores: list[_LineIgnore] = []
        self.problems: list[str] = []

    @staticmethod
    def from_controls(controls: list[Token]) -> "SuppressionTable":
        table = SuppressionTable()
        open_ignores: list[_Region] = []
        open_flags: dict[str, _Region] = {}
        for tok in controls:
            if tok.kind is not TokenKind.CONTROL:
                continue
            payload = tok.value.strip()
            loc = tok.location
            if payload == "ignore":
                region = _Region(loc.filename, loc.line, _OPEN_END, None)
                open_ignores.append(region)
                table.regions.append(region)
            elif payload == "end":
                if open_ignores:
                    open_ignores.pop().end_line = loc.line
                else:
                    table.problems.append(
                        f"{loc}: /*@end@*/ without matching /*@ignore@*/"
                    )
            elif payload == "i":
                table.line_ignores.append(_LineIgnore(loc.filename, loc.line, 1))
            elif payload.startswith("i") and payload[1:].isdigit():
                table.line_ignores.append(
                    _LineIgnore(loc.filename, loc.line, int(payload[1:]))
                )
            elif payload.startswith("-"):
                name = payload[1:].strip()
                if name in FLAG_REGISTRY:
                    region = _Region(loc.filename, loc.line, _OPEN_END, name)
                    open_flags[name] = region
                    table.regions.append(region)
                else:
                    table.problems.append(f"{loc}: unknown flag in control comment: {name!r}")
            elif payload.startswith("+") or payload.startswith("="):
                name = payload[1:].strip()
                region = open_flags.pop(name, None)
                if region is not None:
                    region.end_line = loc.line
                # '+flag' with no matching '-flag' simply (re)enables: no-op here
            else:
                table.problems.append(f"{loc}: unrecognized control comment {payload!r}")
        return table

    def filter(self, messages: list[Message]) -> tuple[list[Message], int]:
        """Drop suppressed messages; returns (kept, suppressed_count)."""
        budgets = {
            (li.filename, li.line): li.budget for li in self.line_ignores
        }
        kept: list[Message] = []
        suppressed = 0
        for msg in sorted(messages, key=Message.sort_key):
            loc = msg.location
            if self._in_region(msg):
                suppressed += 1
                continue
            key = (loc.filename, loc.line)
            if budgets.get(key, 0) > 0:
                budgets[key] -= 1
                suppressed += 1
                continue
            kept.append(msg)
        return kept, suppressed

    def _in_region(self, msg: Message) -> bool:
        loc = msg.location
        for region in self.regions:
            if region.filename != loc.filename:
                continue
            if not (region.start_line <= loc.line <= region.end_line):
                continue
            if region.flag is None or region.flag == msg.code.flag:
                return True
        return False
