"""Experiment runners for every table and figure in the paper.

Each function reproduces one row-set of the paper's evaluation and
returns plain data structures; the ``benchmarks/`` suite times them and
prints the same rows the paper reports, and ``EXPERIMENTS.md`` records
paper-vs-measured. See DESIGN.md for the experiment index.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from ..analysis.cfg import build_cfg
from ..core.api import Checker
from ..flags.registry import Flags
from ..frontend.symtab import SymbolTable
from ..messages.message import MessageCode
from ..runtime.interp import Interpreter
from .dbexample import FINAL_STAGE, annotation_census, db_sources
from .generator import generate_program_of_size
from .seeding import (
    BugKind,
    SeededProgram,
    function_line_ranges,
    generate_seeded_program,
    match_runtime_detection,
    match_static_detections,
)

NOIMP = Flags.from_args(["-allimponly"])


# ---------------------------------------------------------------------------
# FIG1-FIG8: the paper's figures
# ---------------------------------------------------------------------------

FIGURE_SOURCES: dict[str, tuple[str, Flags, int]] = {
    # figure id -> (source, flags, expected message count)
    "fig1": (
        "extern char *gname;\n\nvoid setName (char *pname)\n{\n"
        "  gname = pname;\n}\n",
        NOIMP, 0,
    ),
    "fig2": (
        "extern char *gname;\n\nvoid setName (/*@null@*/ char *pname)\n{\n"
        "  gname = pname;\n}\n",
        NOIMP, 1,
    ),
    "fig3": (
        "extern char *gname;\n\n"
        "extern /*@truenull@*/ int isNull (/*@null@*/ char *x);\n\n"
        "void setName (/*@null@*/ char *pname)\n{\n"
        "  if (!isNull (pname)) {\n    gname = pname;\n  }\n}\n",
        NOIMP, 0,
    ),
    "fig4": (
        "extern /*@only@*/ char *gname;\n\n"
        "void setName (/*@temp@*/ char *pname)\n{\n  gname = pname;\n}\n",
        NOIMP, 2,
    ),
    "fig5": (
        "typedef /*@null@*/ struct _list {\n"
        "  /*@only@*/ char *this;\n"
        "  /*@null@*/ /*@only@*/ struct _list *next;\n"
        "} *list;\n\n"
        "extern /*@out@*/ /*@only@*/ void *smalloc (size_t);\n\n"
        "void list_addh (/*@temp@*/ list l, /*@only@*/ char *e)\n{\n"
        "  if (l != NULL)\n  {\n"
        "    while (l->next != NULL)\n    {\n      l = l->next;\n    }\n"
        "    l->next = (list) smalloc (sizeof (*l->next));\n"
        "    l->next->this = e;\n  }\n}\n",
        Flags(), 2,
    ),
}


@dataclass
class FigureResult:
    figure: str
    expected: int
    actual: int
    messages: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.expected == self.actual


def figure_experiments() -> list[FigureResult]:
    """Check each figure program; expect the paper's message counts."""
    out: list[FigureResult] = []
    for figure, (source, flags, expected) in FIGURE_SOURCES.items():
        result = Checker(flags=flags).check_sources({"sample.c": source})
        out.append(
            FigureResult(
                figure, expected, len(result.messages),
                [m.text for m in result.messages],
            )
        )
    return out


def figure6_cfg() -> dict:
    """Structural reproduction of Figure 6's control-flow graph."""
    source = FIGURE_SOURCES["fig5"][0]
    checker = Checker()
    parsed = checker.parse_unit(source, "list.c")
    fdef = parsed.unit.functions()[0]
    cfg = build_cfg(fdef)
    return {
        "function": cfg.function,
        "nodes": len(cfg.nodes),
        "edges": len(cfg.edges),
        "branches": cfg.branch_count,
        "acyclic": cfg.is_acyclic(),
        "paths": cfg.path_count(),
        "execution_points": cfg.execution_points(),
        "dot": cfg.to_dot(),
    }


# ---------------------------------------------------------------------------
# PERF-LIN: checking scales approximately linearly (sections 2, 7)
# ---------------------------------------------------------------------------


def scaling_experiment(
    targets: tuple[int, ...] = (1000, 2000, 4000, 8000), repeats: int = 1
) -> list[dict]:
    rows: list[dict] = []
    for target in targets:
        program = generate_program_of_size(target)
        best = math.inf
        messages = 0
        for _ in range(repeats):
            checker = Checker()
            start = time.perf_counter()
            result = checker.check_sources(dict(program.files))
            best = min(best, time.perf_counter() - start)
            messages = len(result.messages)
        rows.append(
            {
                "loc": program.loc,
                "seconds": best,
                "sec_per_kloc": best / (program.loc / 1000.0),
                "messages": messages,
            }
        )
    return rows


def linearity_ratio(rows: list[dict]) -> float:
    """max/min of per-kloc cost: ~1.0 means linear scaling."""
    costs = [r["sec_per_kloc"] for r in rows]
    return max(costs) / min(costs)


# ---------------------------------------------------------------------------
# PERF-MOD: modular re-checking with interface libraries (section 7)
# ---------------------------------------------------------------------------


def modular_experiment(target_loc: int = 4000, tmpdir: str = ".") -> dict:
    import os

    program = generate_program_of_size(target_loc)
    full_checker = Checker()
    start = time.perf_counter()
    full = full_checker.check_sources(dict(program.files))
    full_seconds = time.perf_counter() - start

    lib_path = os.path.join(tmpdir, "program.lcd")
    full_checker.save_library(full, lib_path)

    module_name = next(
        name for name in sorted(program.files) if name.endswith("0.c")
    )
    module_checker = Checker()
    for name, text in program.files.items():
        if name.endswith(".h"):
            module_checker.sources.add(name, text)
    module_checker.load_library(lib_path)
    start = time.perf_counter()
    module_checker.check_sources({module_name: program.files[module_name]})
    module_seconds = time.perf_counter() - start

    return {
        "loc": program.loc,
        "module": module_name,
        "module_loc": program.files[module_name].count("\n") + 1,
        "full_seconds": full_seconds,
        "module_seconds": module_seconds,
        "speedup": full_seconds / module_seconds if module_seconds else math.inf,
    }


# ---------------------------------------------------------------------------
# MSG-CENSUS: annotation burden (section 7: ~1000 messages unannotated)
# ---------------------------------------------------------------------------


def burden_experiment(target_loc: int = 6000) -> dict:
    program = generate_program_of_size(target_loc)
    annotated = Checker().check_sources(dict(program.files))
    stripped_prog = program.stripped()
    stripped = Checker().check_sources(dict(stripped_prog.files))
    return {
        "loc": program.loc,
        "messages_annotated": len(annotated.messages),
        "messages_unannotated": len(stripped.messages),
        "messages_per_kloc_unannotated": len(stripped.messages)
        / (program.loc / 1000.0),
    }


# ---------------------------------------------------------------------------
# TAB-S6: the section 6 annotation-iteration census on the db example
# ---------------------------------------------------------------------------


def section6_experiment() -> list[dict]:
    rows: list[dict] = []
    for stage in range(FINAL_STAGE + 1):
        files = db_sources(stage)
        noimp = Checker(flags=NOIMP).check_sources(files)
        default = Checker().check_sources(files)
        census = annotation_census(stage)
        alloc_codes = {
            MessageCode.LEAK_OVERWRITE, MessageCode.LEAK_RETURN,
            MessageCode.LEAK_SCOPE, MessageCode.LEAK_RESULT,
            MessageCode.TEMP_TO_ONLY, MessageCode.BAD_TRANSFER,
            MessageCode.IMPLICIT_TRANSFER, MessageCode.ONLY_NOT_RELEASED,
        }
        rows.append(
            {
                "stage": stage,
                "annotations": census.total,
                "null": census.null,
                "only": census.only,
                "out": census.out,
                "unique": census.unique,
                "relaxed": census.relaxed,
                "messages_allimponly": len(noimp.messages),
                "messages_default": len(default.messages),
                "alloc_messages_allimponly": sum(
                    1 for m in noimp.messages if m.code in alloc_codes
                ),
            }
        )
    return rows


def db_runtime_residue() -> dict:
    """Section 7's punchline: after static checking is clean, run-time
    tools still find leaks of storage reachable from globals at exit."""
    from ..runtime.interp import run_program

    files = db_sources(FINAL_STAGE)
    static = Checker().check_sources(files)
    dynamic = run_program(files, max_steps=5_000_000)
    return {
        "static_messages": len(static.messages),
        "runtime_leaked_blocks": dynamic.leaked_blocks,
        "runtime_events": len(dynamic.events),
        "exit_code": dynamic.exit_code,
    }


# ---------------------------------------------------------------------------
# STAT-DYN: static checking vs run-time tools under partial test coverage
# ---------------------------------------------------------------------------


def _parse_for_runtime(seeded: SeededProgram):
    checker = Checker()
    parsed = []
    for name, text in seeded.program.files.items():
        if name.endswith(".h"):
            checker.sources.add(name, text)
    for name, text in seeded.program.files.items():
        if not name.endswith(".h"):
            parsed.append(checker.parse_unit(text, name))
    symtab = SymbolTable()
    enum_consts: dict[str, int] = {}
    for pu in parsed:
        symtab.add_unit(pu.unit)
        enum_consts.update(pu.enum_consts)
    units = [pu.unit for pu in parsed]
    return units, symtab, enum_consts


def static_vs_runtime_experiment(
    coverages: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
    bugs_per_kind: int = 2,
    modules: int = 3,
    seed: int = 20260704,
) -> dict:
    seeded = generate_seeded_program(
        modules=modules, bugs_per_kind=bugs_per_kind, seed=seed
    )
    result = Checker().check_sources(dict(seeded.program.files))
    ranges = function_line_ranges(result.units)
    static_found = match_static_detections(seeded.bugs, result.messages, ranges)

    # false positives: messages attributed to clean scenarios
    clean_spans = [
        ranges[name] for name in seeded.clean_scenarios if name in ranges
    ]
    false_positives = sum(
        1
        for m in result.messages
        if any(
            f == m.location.filename and s <= m.location.line <= e
            for f, s, e in clean_spans
        )
    )

    units, symtab, enum_consts = _parse_for_runtime(seeded)
    total = len(seeded.bugs)
    rows: list[dict] = []
    for coverage in coverages:
        executed = max(1, round(coverage * total))
        covered_bugs = seeded.bugs[:executed]
        runtime_found = 0
        for bug in covered_bugs:
            interp = Interpreter(units, symtab, enum_consts,
                                 max_steps=2_000_000)
            run = interp.run(bug.scenario)
            if match_runtime_detection(bug, run.events):
                runtime_found += 1
        rows.append(
            {
                "coverage": coverage,
                "scenarios_run": executed,
                "runtime_found": runtime_found,
                "runtime_rate": runtime_found / total,
                "static_found": sum(static_found.values()),
                "static_rate": sum(static_found.values()) / total,
            }
        )
    per_kind: dict[str, dict] = {}
    for bug in seeded.bugs:
        entry = per_kind.setdefault(
            bug.kind.value, {"total": 0, "static": 0}
        )
        entry["total"] += 1
        entry["static"] += int(static_found[bug.bug_id])
    return {
        "total_bugs": total,
        "rows": rows,
        "per_kind": per_kind,
        "static_false_positives_in_clean": false_positives,
    }
