"""Bug seeding: programs with known memory errors for detection studies.

The paper's central comparison (sections 1 and 7) is qualitative: static
checking finds errors on *all* paths without running the program, while
run-time tools "depend entirely on running the right test cases". This
module makes that measurable. It generates programs in which each
scenario function contains exactly one seeded bug of a known kind (or no
bug), records the ground truth, and provides matchers for deciding
whether the static checker or the run-time baseline found each one.

The seeded kinds mirror the paper's error catalogue, including the two
residual classes section 7 says the 1996 tool handled poorly (freeing
offset pointers, freeing static storage — "LCLint has since been
improved to detect" them; this reproduction detects both).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from ..messages.message import Message, MessageCode
from ..runtime.heap import RuntimeEventKind
from .generator import GeneratedProgram, generate_program


class BugKind(enum.Enum):
    LEAK = "leak"
    DOUBLE_FREE = "double-free"
    USE_AFTER_FREE = "use-after-free"
    NULL_DEREF = "null-dereference"
    UNINIT_READ = "uninitialized-read"
    STATIC_FREE = "static-free"
    OFFSET_FREE = "offset-free"
    OUT_OF_BOUNDS = "out-of-bounds"
    UNINIT_FIELD = "uninit-field-read"
    DOUBLE_FREE_ALIAS = "double-free-alias"

    @property
    def error_class(self) -> str:
        """The detector-neutral error class this plant manifests as.

        ``static-free`` and ``offset-free`` are distinct plant recipes but
        both surface as an ``invalid-free`` at run time (and as a
        ``BAD_TRANSFER`` statically), so they share one class; every other
        kind's value already is its class slug.
        """
        if self in (BugKind.STATIC_FREE, BugKind.OFFSET_FREE):
            return "invalid-free"
        return self.value


#: Static message codes that count as detecting each bug kind.
STATIC_SIGNATURES: dict[BugKind, set[MessageCode]] = {
    BugKind.LEAK: {MessageCode.LEAK_SCOPE, MessageCode.LEAK_OVERWRITE,
                   MessageCode.LEAK_RESULT},
    BugKind.DOUBLE_FREE: {MessageCode.USE_AFTER_RELEASE},
    BugKind.USE_AFTER_FREE: {MessageCode.USE_AFTER_RELEASE},
    BugKind.NULL_DEREF: {MessageCode.NULL_DEREF},
    BugKind.UNINIT_READ: {MessageCode.USE_BEFORE_DEF},
    BugKind.STATIC_FREE: {MessageCode.BAD_TRANSFER},
    BugKind.OFFSET_FREE: {MessageCode.BAD_TRANSFER},
    BugKind.OUT_OF_BOUNDS: {MessageCode.ARRAY_BOUNDS},
    BugKind.UNINIT_FIELD: {MessageCode.UNINIT_FIELD},
    BugKind.DOUBLE_FREE_ALIAS: {MessageCode.DOUBLE_RELEASE},
}

#: Runtime event kinds that count as detecting each bug kind.
RUNTIME_SIGNATURES: dict[BugKind, set[RuntimeEventKind]] = {
    BugKind.LEAK: {RuntimeEventKind.LEAK},
    BugKind.DOUBLE_FREE: {RuntimeEventKind.DOUBLE_FREE,
                          RuntimeEventKind.USE_AFTER_FREE},
    BugKind.USE_AFTER_FREE: {RuntimeEventKind.USE_AFTER_FREE},
    BugKind.NULL_DEREF: {RuntimeEventKind.NULL_DEREF},
    BugKind.UNINIT_READ: {RuntimeEventKind.UNINIT_READ},
    BugKind.STATIC_FREE: {RuntimeEventKind.INVALID_FREE},
    BugKind.OFFSET_FREE: {RuntimeEventKind.INVALID_FREE},
    BugKind.OUT_OF_BOUNDS: {RuntimeEventKind.OUT_OF_BOUNDS},
    BugKind.UNINIT_FIELD: {RuntimeEventKind.UNINIT_READ},
    BugKind.DOUBLE_FREE_ALIAS: {RuntimeEventKind.DOUBLE_FREE},
}

#: Runtime event classes that *witness* each plantable error class: the
#: instrumented heap has no notion of the static refinements, so a
#: planted ``uninit-field-read`` manifests as an ``uninitialized-read``
#: event and a planted ``double-free-alias`` as a ``double-free``. Plant
#: confirmation and runtime TP scoring go through this map.
RUNTIME_WITNESSES: dict[str, frozenset[str]] = {}
for _kind in BugKind:
    RUNTIME_WITNESSES[_kind.error_class] = RUNTIME_WITNESSES.get(
        _kind.error_class, frozenset()
    ) | frozenset(e.error_class for e in RUNTIME_SIGNATURES[_kind])
del _kind


@dataclass(frozen=True)
class SeededBug:
    bug_id: int
    kind: BugKind
    scenario: str  # function name containing the bug
    file: str


@dataclass
class SeededProgram:
    program: GeneratedProgram
    bugs: list[SeededBug] = field(default_factory=list)
    clean_scenarios: list[str] = field(default_factory=list)

    @property
    def scenarios(self) -> list[str]:
        return [b.scenario for b in self.bugs] + list(self.clean_scenarios)


def bug_body(kind: BugKind, module: int, name: str) -> tuple[str, str]:
    """Return (helper declarations, scenario body) for one bug kind.

    The difftest mutation engine splices these same recipes into
    generator output, so the seeded-program experiment and the
    fault-injection campaign plant byte-identical bugs.
    """
    rec = f"rec{module}"
    helpers = ""
    if kind is BugKind.LEAK:
        body = f"""
  {rec} head = {rec}_create("leaked", 3);
  head = {rec}_push(head, "more", 4);
  printf("{name}: %d\\n", {rec}_total(head));
"""
    elif kind is BugKind.DOUBLE_FREE:
        body = f"""
  {rec} head = {rec}_create("twice", 5);
  printf("{name}: %d\\n", {rec}_total(head));
  {rec}_destroy(head);
  {rec}_destroy(head);
"""
    elif kind is BugKind.USE_AFTER_FREE:
        body = f"""
  {rec} head = {rec}_create("gone", 7);
  {rec}_destroy(head);
  printf("{name}: %d\\n", {rec}_total(head));
"""
    elif kind is BugKind.NULL_DEREF:
        helpers = f"""
static /*@null@*/ /*@only@*/ {rec} maybe_{name}(int n)
{{
  if (n > 0) {{
    return {rec}_create("maybe", n);
  }}
  return NULL;
}}
"""
        body = f"""
  {rec} r = maybe_{name}(-1);
  printf("{name}: %d\\n", r->count);
  {rec}_destroy(r);
"""
    elif kind is BugKind.UNINIT_READ:
        body = f"""
  struct _rec{module} local;
  int t;
  t = local.count;
  printf("{name}: %d\\n", t);
"""
    elif kind is BugKind.STATIC_FREE:
        body = f"""
  char *msg = "immortal";
  printf("{name}: %s\\n", msg);
  free(msg);
"""
    elif kind is BugKind.OFFSET_FREE:
        body = f"""
  char *buf = (char *) malloc(16);
  if (buf == NULL) {{ exit(EXIT_FAILURE); }}
  buf[0] = 'a';
  buf[1] = 0;
  printf("{name}: %s\\n", buf);
  free(buf + 1);
"""
    elif kind is BugKind.OUT_OF_BOUNDS:
        # The canonical off-by-one loop: the last store lands one past
        # the extent (the body only writes, so the zero-iteration path
        # never reads undefined elements).
        body = f"""
  int a[4];
  int i;
  for (i = 0; i <= 4; i++) {{
    a[i] = i * 2;
  }}
  printf("{name}: %d\\n", i);
"""
    elif kind is BugKind.UNINIT_FIELD:
        # Two of three fields written: the struct is partially defined
        # when the unwritten counter is read.
        body = f"""
  struct _rec{module} local;
  int t;
  local.name = "fixed";
  local.next = NULL;
  t = local.count;
  printf("{name}: %d\\n", t);
"""
    elif kind is BugKind.DOUBLE_FREE_ALIAS:
        body = f"""
  char *p = (char *) malloc(8);
  char *q;
  if (p == NULL) {{ exit(EXIT_FAILURE); }}
  p[0] = 'a';
  p[1] = 0;
  q = p;
  printf("{name}: %s\\n", q);
  free(p);
  free(q);
"""
    else:  # pragma: no cover
        raise ValueError(kind)
    return helpers, body


#: Backwards-compatible alias (bug_body predates its public use).
_bug_body = bug_body


#: Clean scenario recipes guarding the checkers' false-positive rate:
#: guard idioms that historically drew spurious messages (?: arms checked
#: against the unguarded store; assignment-in-condition results not
#: refined by the comparison), plus the benign twin of each of the three
#: refinement checkers (an in-bounds counting loop, a fully-initialized
#: struct, an alias freed exactly once). No static message and no runtime
#: event is correct for any entry, so a checker regression shows up as a
#: static-fp discrepancy in the differential campaign instead of only in
#: unit tests.
GUARD_CLEAN_IDIOMS: tuple[str, ...] = (
    "ternary-guard-and",    # (p != NULL && ...) ? use p : fallback
    "ternary-truth",        # p ? use p : fallback
    "assign-cond-eq",       # if ((p = malloc(..)) == NULL) return;
    "assign-cond-ne",       # if ((p = malloc(..)) != NULL) { use p }
    "index-loop-bounded",   # for (i = 0; i < N; i++) a[i] = ...  (in range)
    "struct-full-init",     # every field written before the read
    "alias-single-free",    # q = p; free(q);  (freed exactly once)
)


def guard_clean_body(idiom: str, module: int, name: str) -> tuple[str, str]:
    """Return (helper declarations, scenario body) for one clean guard
    idiom from :data:`GUARD_CLEAN_IDIOMS`.

    Every body frees what it allocates and never reads memory it has not
    written, so both the static checker and the instrumented heap must
    stay silent on it.
    """
    rec = f"rec{module}"
    maybe_helper = f"""
static /*@null@*/ /*@only@*/ {rec} opt_{name}(int n)
{{
  if (n > 0) {{
    return {rec}_create("opt", n);
  }}
  return NULL;
}}
"""
    if idiom == "ternary-guard-and":
        helpers = maybe_helper
        body = f"""
  {rec} r;
  int v;
  r = opt_{name}(3);
  v = (r != NULL && r->count > 0) ? r->count : 0;
  printf("{name}: %d\\n", v);
  if (r != NULL) {{
    {rec}_destroy(r);
  }}
"""
    elif idiom == "ternary-truth":
        helpers = maybe_helper
        body = f"""
  {rec} r;
  int v;
  r = opt_{name}(2);
  v = r ? r->count : 0;
  printf("{name}: %d\\n", v);
  if (r != NULL) {{
    {rec}_destroy(r);
  }}
"""
    elif idiom == "assign-cond-eq":
        helpers = ""
        body = f"""
  char *s;
  if ((s = (char *) malloc(4)) == NULL) {{
    return;
  }}
  s[0] = 'x';
  s[1] = 0;
  printf("{name}: %s\\n", s);
  free(s);
"""
    elif idiom == "assign-cond-ne":
        helpers = ""
        body = f"""
  char *t;
  int v;
  v = 0;
  if ((t = (char *) malloc(4)) != NULL) {{
    t[0] = 'y';
    v = 1;
    free(t);
  }}
  printf("{name}: %d\\n", v);
"""
    elif idiom == "index-loop-bounded":
        helpers = ""
        body = f"""
  int a[4];
  int i;
  for (i = 0; i < 4; i++) {{
    a[i] = i * 2;
  }}
  printf("{name}: %d\\n", i);
"""
    elif idiom == "struct-full-init":
        helpers = ""
        body = f"""
  struct _rec{module} local;
  int t;
  local.name = "fixed";
  local.next = NULL;
  local.count = 4;
  t = local.count;
  printf("{name}: %d\\n", t);
"""
    elif idiom == "alias-single-free":
        helpers = ""
        body = f"""
  char *p = (char *) malloc(8);
  char *q;
  if (p == NULL) {{ exit(EXIT_FAILURE); }}
  p[0] = 'a';
  p[1] = 0;
  q = p;
  printf("{name}: %s\\n", q);
  free(q);
"""
    else:
        raise ValueError(f"unknown guard idiom {idiom!r}")
    return helpers, body


def _clean_body(module: int, name: str, count: int) -> str:
    rec = f"rec{module}"
    return f"""
  {rec} head = {rec}_create("clean", {count});
  head = {rec}_push(head, "ok", {count + 1});
  printf("{name}: %d\\n", {rec}_total(head));
  {rec}_destroy(head);
"""


def generate_seeded_program(
    modules: int = 3,
    bugs_per_kind: int = 2,
    clean_scenarios: int = 6,
    kinds: list[BugKind] | None = None,
    seed: int = 20260704,
) -> SeededProgram:
    """A generated program plus scenario functions with seeded bugs.

    Every scenario is an independent entry point, so a 'test suite' is a
    subset of scenarios to execute — which is exactly the knob the
    static-vs-runtime experiment turns.
    """
    rng = random.Random(seed)
    base = generate_program(modules=modules, filler_functions=2,
                            scenarios_per_module=0, seed=seed)
    kinds = kinds or list(BugKind)
    files = dict(base.files)
    bugs: list[SeededBug] = []
    clean: list[str] = []

    parts = ['#include <stdlib.h>\n#include <stdio.h>\n#include "util.h"\n']
    for i in range(modules):
        parts.append(f'#include "rec{i}.h"\n')

    bug_id = 0
    scenario_names: list[str] = []
    for kind in kinds:
        for k in range(bugs_per_kind):
            module = rng.randrange(modules)
            name = f"scenario_{kind.value.replace('-', '_')}_{k}"
            helpers, body = bug_body(kind, module, name)
            parts.append(helpers)
            parts.append(f"void {name}(void)\n{{{body}}}\n")
            bugs.append(SeededBug(bug_id, kind, name, "seeded.c"))
            scenario_names.append(name)
            bug_id += 1
    for k in range(clean_scenarios):
        module = rng.randrange(modules)
        name = f"scenario_clean_{k}"
        parts.append(f"void {name}(void)\n{{{_clean_body(module, name, k)}}}\n")
        clean.append(name)
        scenario_names.append(name)

    calls = "\n".join(f"  {n}();" for n in scenario_names)
    parts.append(f"int main(void)\n{{\n{calls}\n  return 0;\n}}\n")
    files["seeded.c"] = "\n".join(parts)

    program = GeneratedProgram(
        files, modules, base.functions + len(scenario_names) + 1,
        scenario_names,
    )
    return SeededProgram(program, bugs, clean)


# ---------------------------------------------------------------------------
# detection matching
# ---------------------------------------------------------------------------


def function_line_ranges(units) -> dict[str, tuple[str, int, int]]:
    """Map function name -> (file, first line, last line)."""
    ranges: dict[str, tuple[str, int, int]] = {}
    for unit in units:
        for fdef in unit.functions():
            start = fdef.location.line
            end = (fdef.body.end_location or fdef.location).line
            ranges[fdef.name] = (fdef.location.filename, start, end)
    return ranges


def match_static_detections(
    bugs: list[SeededBug],
    messages: list[Message],
    ranges: dict[str, tuple[str, int, int]],
) -> dict[int, bool]:
    """Which seeded bugs does a static report cover?"""
    found: dict[int, bool] = {}
    for bug in bugs:
        span = ranges.get(bug.scenario)
        signature = STATIC_SIGNATURES[bug.kind]
        hit = False
        if span is not None:
            filename, start, end = span
            for msg in messages:
                if msg.code not in signature:
                    continue
                if msg.location.filename != filename:
                    continue
                if start <= msg.location.line <= end + 1:
                    hit = True
                    break
        found[bug.bug_id] = hit
    return found


def match_runtime_detection(bug: SeededBug, events) -> bool:
    signature = RUNTIME_SIGNATURES[bug.kind]
    return any(e.kind in signature for e in events)
