"""Benchmark workloads: program generation, bug seeding, experiment harness."""

from .dbexample import FINAL_STAGE, annotation_census, db_sources
from .generator import GeneratedProgram, generate_program, generate_program_of_size, strip_annotations
from .harness import (
    burden_experiment,
    db_runtime_residue,
    figure6_cfg,
    figure_experiments,
    linearity_ratio,
    modular_experiment,
    scaling_experiment,
    section6_experiment,
    static_vs_runtime_experiment,
)
from .seeding import BugKind, SeededBug, SeededProgram, generate_seeded_program

__all__ = [
    "FINAL_STAGE",
    "annotation_census",
    "db_sources",
    "GeneratedProgram",
    "generate_program",
    "generate_program_of_size",
    "strip_annotations",
    "burden_experiment",
    "db_runtime_residue",
    "figure6_cfg",
    "figure_experiments",
    "linearity_ratio",
    "modular_experiment",
    "scaling_experiment",
    "section6_experiment",
    "static_vs_runtime_experiment",
    "BugKind",
    "SeededBug",
    "SeededProgram",
    "generate_seeded_program",
]
