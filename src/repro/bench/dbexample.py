"""Reconstruction of the section 6 employee-database example.

The paper's running example is the ~1000-line employee database program
from the Larch book ([5]); the original sources are not included with
the paper, so this module reconstructs the program from its published
description: an ``eref`` pool module backed by allocated arrays inside a
static variable, an ``erc`` (employee-ref collection) abstraction built
on a linked list (Figure 7's ``erc_create`` is quoted verbatim), an
``employee`` module whose ``setName`` is Figure 8, an ``empset`` layer,
a four-collection database, and a test driver.

Annotations (and a few code fixes: assertions, the driver's six missing
``free`` calls) are attached to *stages*, reproducing the iterative
annotation process of section 6:

====== =====================================================================
stage  meaning
====== =====================================================================
0      original program: no annotations, driver leaks present
1      + null annotations and the defensive assertions they prompted
2      + the only annotations fixing the seven -allimponly anomalies
       (two returns, two eref_pool fields, erc_final's parameter, and the
       propagation pair)
3      + only annotations from propagation up the call chain
       (empset, dbase statics, list links)
4      + the six driver free() fixes, the out parameter, and unique
====== =====================================================================

``db_sources(stage)`` renders the program at a stage; ``annotation_census``
reports how many annotations of each kind a stage adds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Annotation slots: @N:text@ renders as text when stage >= N, else "".
# The slot text itself contains '@' (annotation comments), so the closing
# delimiter is found with a scanner: a '@' neither preceded nor followed
# by '*' (which would make it part of '/*@' or '@*/').
# Code slots: lines wrapped in %N{ ... }% render only when stage >= N,
# and %N!{ ... }% renders only when stage < N (for code that is *removed*
# by a fix, like the driver's leaking re-assignments without free).

_SLOT_OPEN = re.compile(r"@(\d)+:")
_CODE_ON = re.compile(r"%(\d+)\{(.*?)\}%", re.S)
_CODE_OFF = re.compile(r"%(\d+)!\{(.*?)\}%", re.S)

FINAL_STAGE = 4


def _render_slots(text: str, stage: int) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        match = _SLOT_OPEN.match(text, i)
        if match is None:
            out.append(text[i])
            i += 1
            continue
        level = int(match.group(1))
        j = match.end()
        while j < len(text):
            if (
                text[j] == "@"
                and (j == 0 or text[j - 1] != "*")
                and (j + 1 >= len(text) or text[j + 1] != "*")
            ):
                break
            j += 1
        body = text[match.end() : j]
        if stage >= level:
            out.append(body)
        i = j + 1
    return "".join(out)


def _render(template: str, stage: int) -> str:
    def code_on(match: re.Match) -> str:
        return match.group(2) if stage >= int(match.group(1)) else ""

    def code_off(match: re.Match) -> str:
        return match.group(2) if stage < int(match.group(1)) else ""

    text = _CODE_OFF.sub(code_off, template)
    text = _CODE_ON.sub(code_on, text)
    return _render_slots(text, stage)


EMPLOYEE_H = """#ifndef EMPLOYEE_H
#define EMPLOYEE_H

#define maxEmployeeName 24
#define employeePrintSize 63

typedef enum { MGR, NONMGR } job;
typedef enum { MALE, FEMALE } gender;

typedef struct {
  int ssNum;
  char name[maxEmployeeName];
  int salary;
  gender gen;
  job j;
} employee;

extern int employee_setName(employee *e, @4:/*@unique@*/ @char *na);
extern int employee_equal(employee *e1, employee *e2);
extern void employee_sprint(@4:/*@out@*/ @char *s, employee e);

#endif
"""

EMPLOYEE_C = """#include <stdio.h>
#include <string.h>
#include "employee.h"

int employee_setName(employee *e, @4:/*@unique@*/ @char *na)
{
  int i;

  for (i = 0; na[i] != '\\0'; i++) {
    if (i == maxEmployeeName - 1) {
      return 0;
    }
  }
  strcpy(e->name, na);
  return 1;
}

int employee_equal(employee *e1, employee *e2)
{
  return (e1->ssNum == e2->ssNum)
      && (e1->salary == e2->salary)
      && (e1->gen == e2->gen)
      && (e1->j == e2->j)
      && (strcmp(e1->name, e2->name) == 0);
}

void employee_sprint(@4:/*@out@*/ @char *s, employee e)
{
  sprintf(s, "%d %s %s %s %d",
          e.ssNum,
          e.gen == MALE ? "male" : "female",
          e.j == MGR ? "manager" : "non-manager",
          e.name,
          e.salary);
}
"""

EREF_H = """#ifndef EREF_H
#define EREF_H
#include "employee.h"

typedef int eref;

#define erefNIL (-1)

extern void eref_initMod(void);
extern eref eref_alloc(void);
extern void eref_free(eref er);
extern void eref_assign(eref er, employee e);
extern employee eref_get(eref er);

#endif
"""

EREF_C = """#include <stdlib.h>
#include <stdio.h>
#include <assert.h>
#include "employee.h"
#include "eref.h"

#define POOLSIZE 16

typedef enum { used, avail } eref_status;

typedef struct {
  @2:/*@null@*/ /*@only@*/ /*@reldef@*/ @employee *conts;
  @2:/*@null@*/ /*@only@*/ /*@reldef@*/ @eref_status *status;
  int size;
} eref_pool_t;

static eref_pool_t eref_pool;
static int pool_initialized = 0;

void eref_initMod(void)
{
  int i;
  employee *nc;
  eref_status *ns;

  if (pool_initialized) {
    return;
  }
  nc = (employee *) malloc(POOLSIZE * sizeof(employee));
  ns = (eref_status *) malloc(POOLSIZE * sizeof(eref_status));
  if (nc == NULL || ns == NULL) {
    printf("malloc returned null in eref_initMod\\n");
    exit(EXIT_FAILURE);
  }
  for (i = 0; i < POOLSIZE; i++) {
    ns[i] = avail;
  }
  eref_pool.conts = nc;
  eref_pool.status = ns;
  eref_pool.size = POOLSIZE;
  pool_initialized = 1;
}

eref eref_alloc(void)
{
  int i;

%1{  assert(eref_pool.status != NULL);
}%  for (i = 0; i < eref_pool.size; i++) {
    if (eref_pool.status[i] == avail) {
      eref_pool.status[i] = used;
      return i;
    }
  }
  return erefNIL;
}

void eref_free(eref er)
{
%1{  assert(eref_pool.status != NULL);
}%  eref_pool.status[er] = avail;
}

void eref_assign(eref er, employee e)
{
%1{  assert(eref_pool.conts != NULL);
}%  eref_pool.conts[er] = e;
}

employee eref_get(eref er)
{
%1{  assert(eref_pool.conts != NULL);
}%  return eref_pool.conts[er];
}
"""

ERC_H = """#ifndef ERC_H
#define ERC_H
#include "eref.h"

typedef @1:/*@null@*/ @struct _elem {
  eref val;
  @3:/*@null@*/ /*@only@*/ @struct _elem *next;
} *ercElem;

typedef struct {
  @1:/*@null@*/ @@3:/*@only@*/ @ercElem vals;
  int size;
} *erc;

extern @2:/*@only@*/ @erc erc_create(void);
extern void erc_clear(erc c);
extern void erc_final(@2:/*@only@*/ @erc c);
extern void erc_insert(erc c, eref er);
extern int erc_delete(erc c, eref er);
extern int erc_member(eref er, erc c);
extern eref erc_choose(erc c);
extern int erc_size(erc c);
extern @2:/*@only@*/ @char *erc_sprint(erc c);

#endif
"""

ERC_C = """#include <stdlib.h>
#include <stdio.h>
#include <string.h>
#include <assert.h>
#include "employee.h"
#include "eref.h"
#include "erc.h"

static void elems_free(@3:/*@null@*/ /*@only@*/ @ercElem e)
{
  if (e != NULL) {
    elems_free(e->next);
    free(e);
  }
}

@2:/*@only@*/ @erc erc_create(void)
{
  erc c = (erc) malloc(sizeof(*c));

  if (c == NULL) {
    printf("malloc returned null in erc_create\\n");
    exit(EXIT_FAILURE);
  }

  c->vals = NULL;
  c->size = 0;
  return c;
}

void erc_clear(erc c)
{
  elems_free(c->vals);
  c->vals = NULL;
  c->size = 0;
}

void erc_final(@2:/*@only@*/ @erc c)
{
  erc_clear(c);
  free(c);
}

void erc_insert(erc c, eref er)
{
  ercElem e = (ercElem) malloc(sizeof(*e));

  if (e == NULL) {
    printf("malloc returned null in erc_insert\\n");
    exit(EXIT_FAILURE);
  }
  e->val = er;
  e->next = c->vals;
  c->vals = e;
  c->size = c->size + 1;
}

static @3:/*@null@*/ /*@only@*/ @ercElem
elems_remove(@3:/*@null@*/ /*@only@*/ @ercElem e, eref er, int *found)
{
  ercElem rest;

  if (e == NULL) {
    return NULL;
  }
  rest = elems_remove(e->next, er, found);
  if (e->val == er && *found == 0) {
    *found = 1;
    free(e);
    return rest;
  }
  e->next = rest;
  return e;
}

int erc_delete(erc c, eref er)
{
  int found = 0;

  c->vals = elems_remove(c->vals, er, &found);
  if (found != 0) {
    c->size = c->size - 1;
  }
  return found;
}

int erc_member(eref er, erc c)
{
  ercElem cur = c->vals;

  while (cur != NULL) {
    if (cur->val == er) {
      return 1;
    }
    cur = cur->next;
  }
  return 0;
}

eref erc_choose(erc c)
{
  /* requires erc_size(c) > 0 */
%1{  assert(c->vals != NULL);
}%  return c->vals->val;
}

int erc_size(erc c)
{
  return c->size;
}

@2:/*@only@*/ @char *erc_sprint(erc c)
{
  ercElem cur;
  employee e;
  int offset = 0;
  char *result = (char *) malloc((size_t) (c->size * (employeePrintSize + 1) + 1));

  if (result == NULL) {
    printf("malloc returned null in erc_sprint\\n");
    exit(EXIT_FAILURE);
  }
  result[0] = '\\0';
  cur = c->vals;
  while (cur != NULL) {
    e = eref_get(cur->val);
    employee_sprint(result + offset, e);
    strcat(result, "\\n");
    offset = (int) strlen(result);
    cur = cur->next;
  }
  return result;
}
"""

EMPSET_H = """#ifndef EMPSET_H
#define EMPSET_H
#include "erc.h"

typedef erc empset;

extern @3:/*@only@*/ @empset empset_create(void);
extern void empset_final(@3:/*@only@*/ @empset s);
extern void empset_clear(empset s);
extern int empset_insert(empset s, employee e);
extern int empset_delete(empset s, employee e);
extern int empset_member(employee e, empset s);
extern int empset_size(empset s);
extern employee empset_choose(empset s);
extern @3:/*@only@*/ @char *empset_sprint(empset s);

#endif
"""

EMPSET_C = """#include <stdlib.h>
#include <stdio.h>
#include <assert.h>
#include "employee.h"
#include "eref.h"
#include "erc.h"
#include "empset.h"

static eref empset_locate(empset s, employee e)
{
  ercElem cur;
  employee stored;

%1{  assert(s != NULL);
}%  cur = s->vals;
  while (cur != NULL) {
    stored = eref_get(cur->val);
    if (employee_equal(&stored, &e)) {
      return cur->val;
    }
    cur = cur->next;
  }
  return erefNIL;
}

@3:/*@only@*/ @empset empset_create(void)
{
  return erc_create();
}

void empset_final(@3:/*@only@*/ @empset s)
{
  erc_final(s);
}

void empset_clear(empset s)
{
  erc_clear(s);
}

int empset_insert(empset s, employee e)
{
  eref er;

  if (empset_locate(s, e) != erefNIL) {
    return 0;
  }
  er = eref_alloc();
  if (er == erefNIL) {
    return 0;
  }
  eref_assign(er, e);
  erc_insert(s, er);
  return 1;
}

int empset_delete(empset s, employee e)
{
  eref er = empset_locate(s, e);

  if (er == erefNIL) {
    return 0;
  }
  eref_free(er);
  return erc_delete(s, er);
}

int empset_member(employee e, empset s)
{
  return empset_locate(s, e) != erefNIL;
}

int empset_size(empset s)
{
  return erc_size(s);
}

employee empset_choose(empset s)
{
  /* requires empset_size(s) > 0 */
  return eref_get(erc_choose(s));
}

@3:/*@only@*/ @char *empset_sprint(empset s)
{
  return erc_sprint(s);
}
"""

DBASE_H = """#ifndef DBASE_H
#define DBASE_H
#include "empset.h"

typedef enum { db_OK, db_DUPLICATE, db_MISSING, db_BADRANGE } db_status;

extern void db_initMod(void);
extern db_status db_hire(employee e);
extern db_status db_fire(int ssNum);
extern db_status db_promote(int ssNum);
extern db_status db_setSalary(int ssNum, int salary);
extern int db_query(gender g, job j, int lo, int hi, empset result);
extern @3:/*@only@*/ @char *db_sprint(void);

#endif
"""

DBASE_C = """#include <stdlib.h>
#include <stdio.h>
#include <string.h>
#include <assert.h>
#include "employee.h"
#include "eref.h"
#include "erc.h"
#include "empset.h"
#include "dbase.h"

static @1:/*@null@*/ @@3:/*@only@*/ @erc db_mMgrs;
static @1:/*@null@*/ @@3:/*@only@*/ @erc db_fMgrs;
static @1:/*@null@*/ @@3:/*@only@*/ @erc db_mNon;
static @1:/*@null@*/ @@3:/*@only@*/ @erc db_fNon;

static @3:/*@dependent@*/ @erc db_bucket(gender g, job j)
{
  if (g == MALE) {
    if (j == MGR) {
%1{      assert(db_mMgrs != NULL);
}%      return db_mMgrs;
    }
%1{    assert(db_mNon != NULL);
}%    return db_mNon;
  }
  if (j == MGR) {
%1{    assert(db_fMgrs != NULL);
}%    return db_fMgrs;
  }
%1{  assert(db_fNon != NULL);
}%  return db_fNon;
}

static eref db_locate(int ssNum)
{
  gender g;
  job j;
  erc bucket;
  ercElem cur;
  employee e;

  for (g = MALE; g <= FEMALE; g++) {
    for (j = MGR; j <= NONMGR; j++) {
      bucket = db_bucket(g, j);
      cur = bucket->vals;
      while (cur != NULL) {
        e = eref_get(cur->val);
        if (e.ssNum == ssNum) {
          return cur->val;
        }
        cur = cur->next;
      }
    }
  }
  return erefNIL;
}

void db_initMod(void)
{
  eref_initMod();
  db_mMgrs = erc_create();
  db_fMgrs = erc_create();
  db_mNon = erc_create();
  db_fNon = erc_create();
}

db_status db_hire(employee e)
{
  if (db_locate(e.ssNum) != erefNIL) {
    return db_DUPLICATE;
  }
  if (e.salary < 0) {
    return db_BADRANGE;
  }
  {
    eref er = eref_alloc();
    if (er == erefNIL) {
      return db_BADRANGE;
    }
    eref_assign(er, e);
    erc_insert(db_bucket(e.gen, e.j), er);
  }
  return db_OK;
}

db_status db_fire(int ssNum)
{
  eref er = db_locate(ssNum);
  employee e;

  if (er == erefNIL) {
    return db_MISSING;
  }
  e = eref_get(er);
  if (erc_delete(db_bucket(e.gen, e.j), er)) {
    eref_free(er);
    return db_OK;
  }
  return db_MISSING;
}

db_status db_promote(int ssNum)
{
  eref er = db_locate(ssNum);
  employee e;

  if (er == erefNIL) {
    return db_MISSING;
  }
  e = eref_get(er);
  if (e.j == MGR) {
    return db_BADRANGE;
  }
  if (!erc_delete(db_bucket(e.gen, e.j), er)) {
    return db_MISSING;
  }
  e.j = MGR;
  eref_assign(er, e);
  erc_insert(db_bucket(e.gen, e.j), er);
  return db_OK;
}

db_status db_setSalary(int ssNum, int salary)
{
  eref er = db_locate(ssNum);
  employee e;

  if (er == erefNIL) {
    return db_MISSING;
  }
  if (salary < 0) {
    return db_BADRANGE;
  }
  e = eref_get(er);
  e.salary = salary;
  eref_assign(er, e);
  return db_OK;
}

int db_query(gender g, job j, int lo, int hi, empset result)
{
  erc bucket = db_bucket(g, j);
  ercElem cur = bucket->vals;
  employee e;
  int added = 0;

  while (cur != NULL) {
    e = eref_get(cur->val);
    if (e.salary >= lo && e.salary <= hi) {
      if (empset_insert(result, e)) {
        added = added + 1;
      }
    }
    cur = cur->next;
  }
  return added;
}

@3:/*@only@*/ @char *db_sprint(void)
{
  char *result;
  char *part;
  size_t total = 1;

  result = (char *) malloc(4096);
  if (result == NULL) {
    printf("malloc returned null in db_sprint\\n");
    exit(EXIT_FAILURE);
  }
  result[0] = '\\0';
%1{  assert(db_mMgrs != NULL);
  assert(db_fMgrs != NULL);
  assert(db_mNon != NULL);
  assert(db_fNon != NULL);
}%  part = erc_sprint(db_mMgrs);
  strcat(result, part);
%4{  free(part);
}%  part = erc_sprint(db_fMgrs);
  strcat(result, part);
%4{  free(part);
}%  part = erc_sprint(db_mNon);
  strcat(result, part);
%4{  free(part);
}%  part = erc_sprint(db_fNon);
  strcat(result, part);
%4{  free(part);
}%  (void) total;
  return result;
}
"""

DRIVE_C = """#include <stdlib.h>
#include <stdio.h>
#include <string.h>
#include "employee.h"
#include "eref.h"
#include "erc.h"
#include "empset.h"
#include "dbase.h"

static employee mk_employee(int ssNum, char *name, int salary,
                            gender g, job j)
{
  employee e;

  e.ssNum = ssNum;
  e.salary = salary;
  e.gen = g;
  e.j = j;
  e.name[0] = '\\0';
  (void) employee_setName(&e, name);
  return e;
}

int main(void)
{
  empset matches;
  char *printed;
  char *summary;
  int hired = 0;
  int i;

  db_initMod();

  hired = hired + (db_hire(mk_employee(1, "alice", 60000, FEMALE, MGR)) == db_OK);
  hired = hired + (db_hire(mk_employee(2, "bob", 40000, MALE, NONMGR)) == db_OK);
  hired = hired + (db_hire(mk_employee(3, "carol", 70000, FEMALE, MGR)) == db_OK);
  hired = hired + (db_hire(mk_employee(4, "dave", 30000, MALE, NONMGR)) == db_OK);
  hired = hired + (db_hire(mk_employee(5, "erin", 50000, FEMALE, NONMGR)) == db_OK);
  printf("hired %d\\n", hired);

  (void) db_promote(5);
  (void) db_setSalary(2, 45000);

  matches = empset_create();
  i = db_query(FEMALE, MGR, 0, 100000, matches);
  printf("query found %d\\n", i);

  /* six storage leaks: sprint results overwritten without free (fixed
     in the final stage) */
  printed = empset_sprint(matches);
%4!{  printed = empset_sprint(matches);
  printed = empset_sprint(matches);
}%%4{  printf("%s", printed);
  free(printed);
  printed = empset_sprint(matches);
  printf("%s", printed);
  free(printed);
  printed = empset_sprint(matches);
}%  printf("%s", printed);
%4{  free(printed);
}%
  summary = db_sprint();
%4!{  summary = db_sprint();
  summary = db_sprint();
}%%4{  printf("%s", summary);
  free(summary);
  summary = db_sprint();
  printf("%s", summary);
  free(summary);
  summary = db_sprint();
}%  printf("%s", summary);
%4{  free(summary);
}%
  (void) db_fire(4);
  empset_final(matches);
  return EXIT_SUCCESS;
}
"""

_TEMPLATES: dict[str, str] = {
    "employee.h": EMPLOYEE_H,
    "employee.c": EMPLOYEE_C,
    "eref.h": EREF_H,
    "eref.c": EREF_C,
    "erc.h": ERC_H,
    "erc.c": ERC_C,
    "empset.h": EMPSET_H,
    "empset.c": EMPSET_C,
    "dbase.h": DBASE_H,
    "dbase.c": DBASE_C,
    "drive.c": DRIVE_C,
}


def db_sources(stage: int = FINAL_STAGE) -> dict[str, str]:
    """Render the database program at an annotation stage (0..4)."""
    return {name: _render(text, stage) for name, text in _TEMPLATES.items()}


@dataclass(frozen=True)
class AnnotationCensus:
    null: int
    only: int
    out: int
    unique: int
    relaxed: int  # relnull / partial / reldef

    @property
    def total(self) -> int:
        return self.null + self.only + self.out + self.unique + self.relaxed


_ANN_WORD = re.compile(r"/\*@\s*([a-z]+)\s*@\*/")


def annotation_census(stage: int = FINAL_STAGE) -> AnnotationCensus:
    """Count annotations present at a stage (compare with paper's 15).

    Only logical declarations are counted: annotations in headers, plus
    annotations on file-static declarations in .c files. Annotations
    repeated on a definition whose prototype is already annotated in the
    header are the same logical annotation and are not double-counted.
    """
    counts = {"null": 0, "only": 0, "out": 0, "unique": 0, "relaxed": 0}
    for name, text in db_sources(stage).items():
        if name.endswith(".h"):
            countable = text
        else:
            countable = "\n".join(
                line for line in text.split("\n")
                if line.lstrip().startswith("static")
            )
        for word in _ANN_WORD.findall(countable):
            if word in ("null",):
                counts["null"] += 1
            elif word == "only":
                counts["only"] += 1
            elif word == "out":
                counts["out"] += 1
            elif word == "unique":
                counts["unique"] += 1
            elif word in ("relnull", "partial", "reldef", "dependent"):
                counts["relaxed"] += 1
    return AnnotationCensus(**counts)
