"""Synthetic annotated C program generator for the scaling experiments.

The paper's performance evaluation (section 7) is a case study on
LCLint's own 100k-line source, which is not available here; this
generator is the substitution (see DESIGN.md). It produces multi-module
C programs of a controllable size with the same interface texture as the
paper's code: annotated abstract record types, constructors that
allocate, destructors that release, list traversals, and drivers that
exercise them across module boundaries.

Two properties are load-bearing:

* A fully-annotated generated program checks **clean** — so checker time
  on it measures analysis cost, not message formatting, and so seeded
  bugs (see :mod:`repro.bench.seeding`) are the only true positives.
* The same program can be emitted **without annotations** to reproduce
  the "on the order of a thousand messages" burden experiment.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field


@dataclass
class GeneratedProgram:
    """A multi-file C program plus its generation statistics."""

    files: dict[str, str]
    modules: int
    functions: int
    scenarios: list[str] = field(default_factory=list)

    @property
    def loc(self) -> int:
        return sum(text.count("\n") + 1 for text in self.files.values())

    def stripped(self) -> "GeneratedProgram":
        """The same program with every annotation comment removed."""
        stripped = {
            name: strip_annotations(text) for name, text in self.files.items()
        }
        return GeneratedProgram(
            stripped, self.modules, self.functions, list(self.scenarios)
        )


#: Any stylized ``/*@...@*/`` comment: annotations (``/*@only@*/``) and
#: control comments alike (``/*@ignore@*/``, ``/*@i3@*/``,
#: ``/*@-mustfree@*/``). The payload may contain ``*`` and ``@`` (only
#: the closing ``@*/`` terminates it) and may span lines.
_ANNOTATION_RE = re.compile(r"/\*@(?:[^@]|@(?!\*/))*@\*/[ \t]?", re.DOTALL)


def strip_annotations(text: str) -> str:
    """Remove stylized ``/*@...@*/`` comments (the burden experiment).

    Both annotation comments and control comments are stripped: difftest
    mutants and suppression tests contain ``/*@i@*/``-style controls, and
    an "unannotated" program must not keep its suppressions either. Line
    structure is preserved — a comment is replaced by the newlines it
    contained, never by eating the one that follows it — so line-ranged
    ground truth computed on the annotated text stays valid.
    """
    return _ANNOTATION_RE.sub(lambda m: "\n" * m.group(0).count("\n"), text)


_UTIL_H = """#ifndef UTIL_H
#define UTIL_H
#include <stdlib.h>
#include <string.h>

extern /*@only@*/ char *dup_string(/*@temp@*/ char *s);
extern void fatal(/*@temp@*/ char *msg);

#endif
"""

_UTIL_C = """#include <stdlib.h>
#include <string.h>
#include <stdio.h>
#include "util.h"

/*@only@*/ char *dup_string(/*@temp@*/ char *s)
{
  char *copy = (char *) malloc(strlen(s) + 1);
  if (copy == NULL) {
    exit(EXIT_FAILURE);
  }
  strcpy(copy, s);
  return copy;
}

void fatal(/*@temp@*/ char *msg)
{
  printf("fatal: %s", msg);
  exit(EXIT_FAILURE);
}
"""


def _module_header(i: int) -> str:
    return f"""#ifndef REC{i}_H
#define REC{i}_H
#include <stdlib.h>

typedef /*@null@*/ struct _rec{i} {{
  /*@only@*/ char *name;
  int count;
  /*@null@*/ /*@only@*/ struct _rec{i} *next;
}} *rec{i};

extern /*@only@*/ rec{i} rec{i}_create(/*@temp@*/ char *name, int count);
extern void rec{i}_destroy(/*@null@*/ /*@only@*/ rec{i} r);
extern /*@only@*/ rec{i} rec{i}_push(/*@only@*/ rec{i} head,
                                     /*@temp@*/ char *name, int count);
extern int rec{i}_total(/*@null@*/ /*@temp@*/ rec{i} r);
extern int rec{i}_weight(int seed);

#endif
"""


def _module_source(i: int, rng: random.Random, filler_functions: int) -> str:
    parts: list[str] = []
    parts.append(f'#include <stdlib.h>\n#include <stdio.h>\n'
                 f'#include "util.h"\n#include "rec{i}.h"\n')

    parts.append(f"""
/*@only@*/ rec{i} rec{i}_create(/*@temp@*/ char *name, int count)
{{
  rec{i} r = (rec{i}) malloc(sizeof(*r));
  if (r == NULL) {{
    exit(EXIT_FAILURE);
  }}
  r->name = dup_string(name);
  r->count = count;
  r->next = NULL;
  return r;
}}

void rec{i}_destroy(/*@null@*/ /*@only@*/ rec{i} r)
{{
  if (r != NULL) {{
    rec{i}_destroy(r->next);
    free(r->name);
    free(r);
  }}
}}

/*@only@*/ rec{i} rec{i}_push(/*@only@*/ rec{i} head,
                              /*@temp@*/ char *name, int count)
{{
  rec{i} r = rec{i}_create(name, count);
  r->next = head;
  return r;
}}

int rec{i}_total(/*@null@*/ /*@temp@*/ rec{i} r)
{{
  int total = 0;
  while (r != NULL) {{
    total = total + r->count;
    r = r->next;
  }}
  return total;
}}
""")

    # Filler functions: pure arithmetic, annotation-free, always clean.
    weight_terms: list[str] = []
    for j in range(filler_functions):
        a = rng.randint(2, 9)
        b = rng.randint(1, 97)
        c = rng.randint(2, 13)
        lines = [f"static int filler{i}_{j}(int x)", "{", "  int acc = x;"]
        for k in range(rng.randint(3, 7)):
            op = rng.choice(["+", "*", "^", "-"])
            lines.append(f"  acc = (acc {op} {a + k}) % {b + 7 * k + 1};")
        lines.append(f"  if (acc < 0) {{ acc = -acc; }}")
        lines.append(f"  return acc + {c};")
        lines.append("}")
        parts.append("\n".join(lines) + "\n")
        weight_terms.append(f"filler{i}_{j}(seed + {j})")

    body_terms = weight_terms or ["seed"]
    sum_expr = ";\n  total = total + ".join(body_terms)
    parts.append(f"""
int rec{i}_weight(int seed)
{{
  int total = 0;
  total = total + {sum_expr};
  return total;
}}
""")
    return "\n".join(parts)


def _driver_source(modules: int, scenarios_per_module: int) -> tuple[str, list[str]]:
    parts = ['#include <stdlib.h>\n#include <stdio.h>\n#include "util.h"\n']
    for i in range(modules):
        parts.append(f'#include "rec{i}.h"\n')
    scenario_names: list[str] = []
    for i in range(modules):
        for s in range(scenarios_per_module):
            name = f"scenario_{i}_{s}"
            scenario_names.append(name)
            parts.append(f"""
void {name}(void)
{{
  rec{i} head = rec{i}_create("base", {s});
  int total;
  head = rec{i}_push(head, "first", {s + 1});
  head = rec{i}_push(head, "second", {s + 2});
  total = rec{i}_total(head) + rec{i}_weight({s});
  printf("{name}: %d\\n", total);
  rec{i}_destroy(head);
}}
""")
    calls = "\n".join(f"  {name}();" for name in scenario_names)
    parts.append(f"""
int main(void)
{{
{calls}
  return EXIT_SUCCESS;
}}
""")
    return "\n".join(parts), scenario_names


def generate_program(
    modules: int = 4,
    filler_functions: int = 6,
    scenarios_per_module: int = 2,
    seed: int = 20260704,
) -> GeneratedProgram:
    """Generate a clean, fully-annotated multi-module program."""
    rng = random.Random(seed)
    files: dict[str, str] = {"util.h": _UTIL_H, "util.c": _UTIL_C}
    for i in range(modules):
        files[f"rec{i}.h"] = _module_header(i)
        files[f"rec{i}.c"] = _module_source(i, rng, filler_functions)
    driver, scenarios = _driver_source(modules, scenarios_per_module)
    files["driver.c"] = driver
    functions = modules * (5 + filler_functions) + len(scenarios) + 3
    return GeneratedProgram(files, modules, functions, scenarios)


def generate_program_of_size(
    target_loc: int, seed: int = 20260704
) -> GeneratedProgram:
    """Generate a program whose total line count approximates *target_loc*.

    A module with the default filler density is ~60 + 9*filler lines; the
    solver picks module/filler counts and then refines filler count on
    the actual output.
    """
    modules = max(1, min(48, target_loc // 400))
    filler = 4
    program = generate_program(modules=modules, filler_functions=filler,
                               seed=seed)
    # refine filler count toward the target (two rounds is plenty)
    for _ in range(4):
        actual = program.loc
        if abs(actual - target_loc) < max(60, target_loc // 20):
            break
        per_filler = 11 * modules  # approx lines added per +1 filler/module
        delta = (target_loc - actual) // per_filler
        if delta == 0:
            break
        filler = max(1, filler + delta)
        program = generate_program(modules=modules, filler_functions=filler,
                                   seed=seed)
    return program
