"""Observability: span tracing and metrics for the checking pipeline.

Two zero-dependency primitives (see docs/internals.md section 8):

* :class:`~repro.obs.trace.Tracer` — nested wall-clock spans
  (batch -> unit -> phase -> function) emitted to a JSON-lines file or a
  Chrome trace-event file. A tracer without a sink still measures (the
  engine derives its ``--profile`` table from span durations) but emits
  nothing; :data:`~repro.obs.trace.NULL_TRACER` does neither and is the
  default everywhere, so the disabled path costs one attribute check.
* :class:`~repro.obs.metrics.MetricsRegistry` — named counters and
  fixed-bucket latency histograms. :data:`GLOBAL_METRICS` is the shared
  process-lifetime registry: the daemon's ``metrics`` verb and the
  ``--metrics-out`` dump both read it.
"""

from .context import Observability
from .export import ChromeTraceSink, JsonLinesSink, MemorySink
from .metrics import GLOBAL_METRICS, MetricsRegistry
from .trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "ChromeTraceSink",
    "GLOBAL_METRICS",
    "JsonLinesSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "Tracer",
]
