"""Trace sinks: where finished spans go.

* :class:`JsonLinesSink` — one JSON object per line, streamed as spans
  finish (crash-safe: whatever was traced before a crash is on disk);
* :class:`ChromeTraceSink` — buffers events and writes one Chrome
  trace-event JSON file on close, loadable in ``about:tracing`` or
  Perfetto;
* :class:`MemorySink` — keeps events in a list, for tests.

A sink only needs ``emit(event: dict)`` and ``close()``.
"""

from __future__ import annotations

import json
import os


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)


class MemorySink:
    def __init__(self) -> None:
        self.events: list[dict] = []
        self.closed = False

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True


class JsonLinesSink:
    def __init__(self, path: str) -> None:
        _ensure_parent(path)
        self._handle = open(path, "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class ChromeTraceSink:
    """Chrome trace-event format: complete ("X") events, microseconds."""

    def __init__(self, path: str) -> None:
        _ensure_parent(path)
        self.path = path
        self._events: list[dict] = []

    def emit(self, event: dict) -> None:
        out = {
            "name": event["name"],
            "cat": event.get("cat", "phase"),
            "ph": "X",
            "ts": event["ts_us"],
            "dur": event["dur_us"],
            "pid": 1,
            "tid": 1,
        }
        args = dict(event.get("args") or {})
        args["span_id"] = event["id"]
        if event.get("parent") is not None:
            args["parent_span_id"] = event["parent"]
        out["args"] = args
        self._events.append(out)

    def close(self) -> None:
        # ts-sorted so viewers reconstruct nesting from containment.
        self._events.sort(key=lambda e: (e["ts"], -e["dur"]))
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": self._events}, handle)
            handle.write("\n")
        self._events = []
