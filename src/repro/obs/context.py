"""The Observability bundle the driver threads through a run.

``Observability.from_options`` maps the CLI surface (``--trace-out``,
``--trace-format``, ``--metrics-out``) onto a tracer + registry pair;
``finish()`` flushes the trace sink and writes the metrics dump. With no
options it degrades to a sink-less tracer and the global registry, so
callers never branch on "is observability on".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .export import ChromeTraceSink, JsonLinesSink
from .metrics import GLOBAL_METRICS, MetricsRegistry
from .trace import Tracer

TRACE_FORMATS = ("jsonl", "chrome")


@dataclass
class Observability:
    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=lambda: GLOBAL_METRICS)
    metrics_out: str | None = None

    @staticmethod
    def from_options(
        trace_out: str | None = None,
        trace_format: str = "jsonl",
        metrics_out: str | None = None,
    ) -> "Observability":
        if trace_format not in TRACE_FORMATS:
            raise ValueError(
                f"unknown trace format {trace_format!r} "
                f"(expected one of {', '.join(TRACE_FORMATS)})"
            )
        sink = None
        if trace_out is not None:
            sink = (
                ChromeTraceSink(trace_out)
                if trace_format == "chrome" else JsonLinesSink(trace_out)
            )
        return Observability(
            tracer=Tracer(sink), metrics=GLOBAL_METRICS,
            metrics_out=metrics_out,
        )

    def finish(self) -> None:
        """Flush the trace file and write the metrics dump, if any."""
        self.tracer.close()
        if self.metrics_out is not None:
            self.metrics.dump_json(self.metrics_out)
