"""Span tracing: nested wall-clock intervals over the checking pipeline.

A :class:`Tracer` hands out :class:`Span` context managers. Every span
measures its own duration (the incremental engine's ``--profile`` table
is built from these), and — when a *sink* is attached — emits one event
dict per finished span carrying its id, its parent's id, start offset
and duration in microseconds, and any keyword metadata.

The no-sink path is deliberately cheap: a sink-less ``Tracer`` costs two
``perf_counter()`` calls per span (the same price as the ad-hoc timing
it replaced), and fine-grained instrumentation (per-function spans) is
guarded by the single attribute check ``tracer.emitting``.
:data:`NULL_TRACER` does nothing at all and is the default for the pure
checking APIs.

Tracers are single-threaded by design (one per engine/daemon session);
they are never shipped to fork-pool workers.
"""

from __future__ import annotations

import time


class Span:
    """One open interval; use as a context manager or call :meth:`end`."""

    __slots__ = ("tracer", "name", "cat", "id", "parent", "start",
                 "duration", "meta", "_open")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 span_id: int, parent: int | None, meta: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.id = span_id
        self.parent = parent
        self.meta = meta
        self.duration = 0.0
        self._open = True
        self.start = time.perf_counter()

    def annotate(self, **meta) -> None:
        """Attach metadata after the span opened (e.g. a late count)."""
        self.meta.update(meta)

    def end(self) -> float:
        if self._open:
            self._open = False
            self.duration = time.perf_counter() - self.start
            self.tracer._finish(self)
        return self.duration

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.end()


class Tracer:
    """Produces nested spans; emits them to *sink* when one is attached.

    ``emitting`` is the one-attribute-check guard for optional
    fine-grained spans: ``if tracer.emitting: ...``.
    """

    def __init__(self, sink=None) -> None:
        self.sink = sink
        self.emitting = sink is not None
        self._next_id = 0
        self._stack: list[int] = []  # open span ids, innermost last
        self._epoch = time.perf_counter()

    def span(self, name: str, cat: str = "phase", **meta) -> Span:
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        sp = Span(self, name, cat, self._next_id, parent, meta)
        self._stack.append(sp.id)
        return sp

    def add_complete(
        self, name: str, start: float, duration: float,
        cat: str = "phase", **meta,
    ) -> None:
        """Record an already-measured interval (e.g. the lexer's share of
        preprocessing, known only after the fact) as a child of the
        innermost open span."""
        if not self.emitting:
            return
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        self.sink.emit(self._event(
            name, cat, self._next_id, parent, start, duration, meta
        ))

    # -- internal ------------------------------------------------------------

    def _finish(self, sp: Span) -> None:
        # Spans close in LIFO order in practice; tolerate stragglers.
        if self._stack and self._stack[-1] == sp.id:
            self._stack.pop()
        elif sp.id in self._stack:
            self._stack.remove(sp.id)
        if self.emitting:
            self.sink.emit(self._event(
                sp.name, sp.cat, sp.id, sp.parent, sp.start, sp.duration,
                sp.meta,
            ))

    def _event(self, name, cat, span_id, parent, start, duration, meta) -> dict:
        event = {
            "name": name,
            "cat": cat,
            "id": span_id,
            "parent": parent,
            "ts_us": int((start - self._epoch) * 1e6),
            "dur_us": int(duration * 1e6),
        }
        if meta:
            event["args"] = dict(meta)
        return event

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


class _NullSpan:
    """Shared inert span: zero timing, zero emission."""

    __slots__ = ()
    name = ""
    cat = ""
    id = 0
    parent = None
    start = 0.0
    duration = 0.0

    def annotate(self, **meta) -> None:
        pass

    def end(self) -> float:
        return 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """Does nothing; the default tracer of the pure checking APIs."""

    emitting = False
    sink = None

    def span(self, name: str, cat: str = "phase", **meta) -> _NullSpan:
        return NULL_SPAN

    def add_complete(self, name, start, duration, cat="phase", **meta) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()
