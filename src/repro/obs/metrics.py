"""Counters and latency histograms, with zero dependencies.

Metric names are dotted strings (``cache.result.hit``,
``daemon.requests.status.0``); the full catalogue lives in
docs/internals.md section 8. Histograms use fixed upper-bound buckets
in seconds so two dumps are always structurally comparable.

:data:`GLOBAL_METRICS` is the shared process-lifetime registry. The
engine, cache, scheduler, daemon and difftest all default to it, which
is what lets the daemon's ``metrics`` request verb report totals across
every request it has served.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

#: Histogram upper bounds in seconds; the last bucket is unbounded.
LATENCY_BUCKETS_S = (0.001, 0.005, 0.025, 0.1, 0.5, 2.0, 10.0)


class Histogram:
    """Fixed-bucket latency histogram (count, sum, per-bucket tallies)."""

    __slots__ = ("count", "sum_s", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum_s = 0.0
        self.buckets = [0] * (len(LATENCY_BUCKETS_S) + 1)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.sum_s += seconds
        for i, bound in enumerate(LATENCY_BUCKETS_S):
            if seconds <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def to_dict(self) -> dict:
        labels = [f"<={b}" for b in LATENCY_BUCKETS_S] + ["+inf"]
        return {
            "count": self.count,
            "sum_s": round(self.sum_s, 6),
            "buckets": dict(zip(labels, self.buckets)),
        }

    def percentile(self, q: float) -> float:
        """Estimate the *q*-quantile (``0 < q <= 1``) in seconds.

        Linear interpolation inside the containing bucket; observations
        in the unbounded last bucket are reported as its lower bound (an
        underestimate, but a stable one). Returns 0.0 when empty.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        lower = 0.0
        for i, bound in enumerate(LATENCY_BUCKETS_S):
            in_bucket = self.buckets[i]
            if seen + in_bucket >= rank:
                if in_bucket == 0:
                    return bound
                fraction = (rank - seen) / in_bucket
                return lower + (bound - lower) * fraction
            seen += in_bucket
            lower = bound
        return LATENCY_BUCKETS_S[-1]


class MetricsRegistry:
    """Named counters, gauges + histograms; safe to use before/without a
    dump, and safe to update from the checking service's worker threads
    (every mutation holds one short registry lock)."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, float] = {}
        self._lock = threading.Lock()

    # -- counters -----------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        return self._counters.get(name, 0)

    # -- gauges -------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time level (queue depth, inflight count).

        Unlike counters, a gauge can go down; a dump shows the most
        recent value.
        """
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str) -> float:
        return self._gauges.get(name, 0)

    # -- histograms ---------------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(seconds)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    @contextmanager
    def timer(self, name: str):
        """``with metrics.timer("x"): ...`` observes the block's wall
        time into histogram *x* — including when the block raises, so
        failed operations still show up in the latency picture."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - t0)

    # -- dumping ------------------------------------------------------------

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.to_dict()
                    for name, hist in sorted(self._histograms.items())
                },
            }

    def dump_json(self, path: str) -> None:
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()
            self._gauges.clear()


#: The process-lifetime registry every subsystem defaults to.
GLOBAL_METRICS = MetricsRegistry()
