"""The annotation vocabulary from the paper's Appendix B.

Annotations fall into categories; at most one annotation per category may
appear on a declaration (the paper: "At most one annotation in any
category can be used on a given declaration" — violations are static
errors, reported by :mod:`repro.annotations.parse`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class NullAnn(enum.Enum):
    """Null-pointer annotations."""

    NULL = "null"          # may have the value NULL
    NOTNULL = "notnull"    # never NULL (also the unannotated default)
    RELNULL = "relnull"    # relaxed: assumed non-null at uses, NULL assignable


class DefAnn(enum.Enum):
    """Definition (initialization) annotations."""

    OUT = "out"            # referenced storage need not be defined
    IN = "in"              # completely defined (the unannotated default)
    PARTIAL = "partial"    # may have undefined fields; no errors on use
    RELDEF = "reldef"      # relaxed definition checking
    UNDEF = "undef"        # global may be undefined before the call


class AllocAnn(enum.Enum):
    """Allocation / ownership annotations."""

    ONLY = "only"              # sole reference; confers release obligation
    KEEP = "keep"              # like only, but caller may still use it
    TEMP = "temp"              # no new aliases, no deallocation by callee
    OWNED = "owned"            # owns storage that dependents may share
    DEPENDENT = "dependent"    # shares owned storage; must not release
    SHARED = "shared"          # arbitrarily shared; never deallocated
    REFCOUNTED = "refcounted"  # reference-counted storage ([3])
    KILLREF = "killref"        # parameter releases one reference count


class ExposureAnn(enum.Enum):
    """Exposure annotations (return values / parameters of abstract types)."""

    OBSERVER = "observer"  # returned storage must not be modified
    EXPOSED = "exposed"    # mutable internal storage; may not be deallocated


class IncompatibleAnnotations(Exception):
    """Two annotations of the same category on one declaration."""

    def __init__(self, category: str, first: str, second: str) -> None:
        super().__init__(
            f"incompatible annotations: {first!r} and {second!r} "
            f"(at most one {category} annotation is permitted)"
        )
        self.category = category
        self.first = first
        self.second = second


@dataclass(frozen=True)
class AnnotationSet:
    """The annotations attached to one declared entity.

    ``truenull`` / ``falsenull`` apply to function return values and drive
    the guard recognition of section 4 (Figure 3). ``returned`` marks a
    parameter the return value may alias. ``unique`` is the strcpy-style
    no-external-alias constraint of Figure 8.
    """

    null: NullAnn | None = None
    definition: DefAnn | None = None
    alloc: AllocAnn | None = None
    exposure: ExposureAnn | None = None
    unique: bool = False
    returned: bool = False
    truenull: bool = False
    falsenull: bool = False
    size_bound: int | None = None
    names: tuple[str, ...] = field(default=(), compare=False)

    def is_empty(self) -> bool:
        return (
            self.null is None
            and self.definition is None
            and self.alloc is None
            and self.exposure is None
            and not self.unique
            and not self.returned
            and not self.truenull
            and not self.falsenull
            and self.size_bound is None
        )

    def merged_under(self, base: "AnnotationSet") -> "AnnotationSet":
        """Fill unset categories from *base* (typedef-level annotations).

        Declaration-level annotations override typedef-level ones; the
        paper's ``notnull`` exists exactly to override a typedef ``null``.
        """
        # Either side being completely empty (flags *and* names) means
        # the merge is the other side verbatim; AnnotationSet is frozen,
        # so sharing the object is safe. Most declarations hit this.
        if base.is_empty() and not base.names:
            return self
        if self.is_empty() and not self.names:
            return base
        return AnnotationSet(
            null=self.null if self.null is not None else base.null,
            definition=(
                self.definition if self.definition is not None else base.definition
            ),
            alloc=self.alloc if self.alloc is not None else base.alloc,
            exposure=self.exposure if self.exposure is not None else base.exposure,
            unique=self.unique or base.unique,
            returned=self.returned or base.returned,
            truenull=self.truenull or base.truenull,
            falsenull=self.falsenull or base.falsenull,
            size_bound=(
                self.size_bound if self.size_bound is not None
                else base.size_bound
            ),
            names=tuple(dict.fromkeys(self.names + base.names)),
        )

    def with_alloc(self, alloc: AllocAnn | None) -> "AnnotationSet":
        return replace(self, alloc=alloc)

    def with_null(self, null: NullAnn | None) -> "AnnotationSet":
        return replace(self, null=null)

    def describe(self) -> str:
        return " ".join(self.names) if self.names else "<none>"


EMPTY_ANNOTATIONS = AnnotationSet()

#: Annotation word -> (category name, setter description) used by the parser.
ANNOTATION_WORDS: dict[str, tuple[str, object]] = {}
for _enum, _cat in ((NullAnn, "null"), (DefAnn, "definition"),
                    (AllocAnn, "allocation"), (ExposureAnn, "exposure")):
    for _member in _enum:
        ANNOTATION_WORDS[_member.value] = (_cat, _member)
ANNOTATION_WORDS["unique"] = ("aliasing", "unique")
ANNOTATION_WORDS["returned"] = ("returned", "returned")
ANNOTATION_WORDS["truenull"] = ("nullpred", "truenull")
ANNOTATION_WORDS["falsenull"] = ("nullpred", "falsenull")
