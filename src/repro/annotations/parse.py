"""Parsing ``/*@...@*/`` payloads into :class:`AnnotationSet` values.

A payload may contain several whitespace-separated annotation words
(``/*@null out only@*/`` is equivalent to three separate comments, which
is how the standard library declares ``malloc``). Unknown words are
collected as warnings rather than hard errors, mirroring LCLint's
tolerance of annotations it does not implement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoids a package-import cycle
    from ..frontend.source import Location

from .kinds import (
    ANNOTATION_WORDS,
    EMPTY_ANNOTATIONS,
    AllocAnn,
    AnnotationSet,
    DefAnn,
    ExposureAnn,
    IncompatibleAnnotations,
    NullAnn,
)


@dataclass(frozen=True)
class AnnotationProblem:
    """A statically detectable problem in the annotations themselves."""

    location: Location
    description: str


class AnnotationBuilder:
    """Accumulates annotation words for one declaration.

    ``__slots__`` and the untouched-``build()`` fast path matter because
    the parser instantiates one builder per declaration-specifier
    sequence, and the vast majority of declarations in real code carry no
    annotations at all.
    """

    __slots__ = (
        "_null", "_definition", "_alloc", "_exposure", "_unique",
        "_returned", "_truenull", "_falsenull", "_size", "_names",
        "problems", "_touched",
    )

    def __init__(self) -> None:
        self._null: NullAnn | None = None
        self._definition: DefAnn | None = None
        self._alloc: AllocAnn | None = None
        self._exposure: ExposureAnn | None = None
        self._unique = False
        self._returned = False
        self._truenull = False
        self._falsenull = False
        self._size: int | None = None
        self._names: list[str] = []
        self.problems: list[AnnotationProblem] = []
        self._touched = False

    def add_payload(self, payload: str, location: Location) -> None:
        for word in payload.split():
            self.add_word(word, location)

    def add_word(self, word: str, location: Location) -> None:
        self._touched = True
        if word.startswith("size(") and word.endswith(")"):
            # The one parameterized annotation: /*@size(N)@*/ declares the
            # pointed-to storage to hold exactly N elements, feeding the
            # out-of-bounds index checker the same extent knowledge a
            # constant array declaration would.
            payload = word[len("size("):-1]
            try:
                extent = int(payload, 0)
            except ValueError:
                extent = 0
            # A zero or negative extent would feed the bounds checker a
            # vacuous bound that flags every index; storage that holds
            # at least one element is the smallest meaningful claim.
            if extent < 1:
                self.problems.append(
                    AnnotationProblem(
                        location,
                        f"malformed size annotation {word!r} "
                        f"(expected a positive integer extent)",
                    )
                )
                return
            if self._size is not None and self._size != extent:
                self.problems.append(
                    AnnotationProblem(
                        location,
                        f"incompatible annotations: 'size({self._size})' and "
                        f"{word!r} (at most one size annotation is permitted)",
                    )
                )
                return
            self._size = extent
            self._names.append(word)
            return
        entry = ANNOTATION_WORDS.get(word)
        if entry is None:
            self.problems.append(
                AnnotationProblem(location, f"unrecognized annotation {word!r}")
            )
            return
        category, value = entry
        try:
            self._apply(category, word, value)
        except IncompatibleAnnotations as exc:
            self.problems.append(AnnotationProblem(location, str(exc)))
            return
        self._names.append(word)

    def _apply(self, category: str, word: str, value: object) -> None:
        if category == "null":
            if self._null is not None and self._null.value != word:
                raise IncompatibleAnnotations("null", self._null.value, word)
            self._null = value  # type: ignore[assignment]
        elif category == "definition":
            if self._definition is not None and self._definition.value != word:
                raise IncompatibleAnnotations(
                    "definition", self._definition.value, word
                )
            self._definition = value  # type: ignore[assignment]
        elif category == "allocation":
            if self._alloc is not None and self._alloc.value != word:
                raise IncompatibleAnnotations("allocation", self._alloc.value, word)
            self._alloc = value  # type: ignore[assignment]
        elif category == "exposure":
            if self._exposure is not None and self._exposure.value != word:
                raise IncompatibleAnnotations("exposure", self._exposure.value, word)
            self._exposure = value  # type: ignore[assignment]
        elif category == "aliasing":
            self._unique = True
        elif category == "returned":
            self._returned = True
        elif category == "nullpred":
            if word == "truenull":
                if self._falsenull:
                    raise IncompatibleAnnotations("nullpred", "falsenull", word)
                self._truenull = True
            else:
                if self._truenull:
                    raise IncompatibleAnnotations("nullpred", "truenull", word)
                self._falsenull = True

    def build(self) -> AnnotationSet:
        if not self._touched:
            return EMPTY_ANNOTATIONS
        return AnnotationSet(
            null=self._null,
            definition=self._definition,
            alloc=self._alloc,
            exposure=self._exposure,
            unique=self._unique,
            returned=self._returned,
            truenull=self._truenull,
            falsenull=self._falsenull,
            size_bound=self._size,
            names=tuple(self._names),
        )


def parse_annotation_words(
    payloads: list[tuple[str, Location]],
) -> tuple[AnnotationSet, list[AnnotationProblem]]:
    """Parse a sequence of (payload, location) pairs into one set."""
    builder = AnnotationBuilder()
    for payload, location in payloads:
        builder.add_payload(payload, location)
    return builder.build(), builder.problems


def parse_spec_words(spec: str) -> AnnotationSet:
    """Parse a bare word string (used by the stdlib spec tables)."""
    builder = AnnotationBuilder()
    from ..frontend.source import BUILTIN_LOCATION

    builder.add_payload(spec, BUILTIN_LOCATION)
    return builder.build()
