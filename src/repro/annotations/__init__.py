"""Interface annotations (paper Appendix B)."""

from .kinds import (
    ANNOTATION_WORDS,
    EMPTY_ANNOTATIONS,
    AllocAnn,
    AnnotationSet,
    DefAnn,
    ExposureAnn,
    IncompatibleAnnotations,
    NullAnn,
)
from .parse import AnnotationBuilder, AnnotationProblem, parse_annotation_words, parse_spec_words

__all__ = [
    "ANNOTATION_WORDS",
    "EMPTY_ANNOTATIONS",
    "AllocAnn",
    "AnnotationSet",
    "DefAnn",
    "ExposureAnn",
    "IncompatibleAnnotations",
    "NullAnn",
    "AnnotationBuilder",
    "AnnotationProblem",
    "parse_annotation_words",
    "parse_spec_words",
]
