"""Memory layout for the run-time interpreter.

Objects are modelled as flat arrays of *slots*, one per scalar component,
with a parallel byte-size accounting so that ``malloc(sizeof(...))``
arithmetic behaves like C. Struct fields map to slot offsets; arrays are
repeated element layouts. This is the minimal shape needed for the
paper's programs: pointer/field/index access, strings, and nested
structures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frontend.ctypes import (
    Array,
    CType,
    EnumType,
    FunctionType,
    Pointer,
    Primitive,
    StructType,
    strip_typedefs,
)

#: Byte sizes of primitives (LP64-ish, matching the parser's sizeof).
PRIMITIVE_SIZES = {
    "void": 1, "char": 1, "signed char": 1, "unsigned char": 1,
    "short": 2, "unsigned short": 2, "int": 4, "unsigned int": 4,
    "long": 8, "unsigned long": 8, "long long": 8, "unsigned long long": 8,
    "float": 4, "double": 8, "long double": 16,
}

POINTER_SIZE = 8


class LayoutError(Exception):
    pass


@dataclass(frozen=True)
class FieldSlot:
    name: str
    slot: int
    ctype: CType


@dataclass
class Layout:
    """Slot layout of one C type."""

    ctype: CType
    slot_count: int
    byte_size: int
    fields: tuple[FieldSlot, ...] = ()
    element: "Layout | None" = None  # for arrays
    element_count: int = 1

    def field(self, name: str) -> FieldSlot | None:
        for fld in self.fields:
            if fld.name == name:
                return fld
        return None


_CACHE: dict[int, Layout] = {}


def layout_of(ctype: CType, depth: int = 0) -> Layout:
    """Compute (and cache) the layout of a type."""
    actual = strip_typedefs(ctype)
    key = id(actual)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    if depth > 32:
        raise LayoutError(f"type nesting too deep for {actual}")

    if isinstance(actual, (Pointer, FunctionType)):
        result = Layout(actual, 1, POINTER_SIZE)
    elif isinstance(actual, EnumType):
        result = Layout(actual, 1, PRIMITIVE_SIZES["int"])
    elif isinstance(actual, Primitive):
        result = Layout(actual, 1, PRIMITIVE_SIZES.get(actual.name, 4))
    elif isinstance(actual, Array):
        elem = layout_of(actual.of, depth + 1)
        count = actual.size if actual.size is not None else 1
        result = Layout(
            actual,
            elem.slot_count * count,
            elem.byte_size * count,
            element=elem,
            element_count=count,
        )
    elif isinstance(actual, StructType):
        # Reserve the cache slot first so recursive structs (through
        # pointers only, as in C) terminate.
        slots: list[FieldSlot] = []
        offset = 0
        byte_size = 0
        for fld in actual.fields or []:
            sub = layout_of(fld.ctype, depth + 1)
            slots.append(FieldSlot(fld.name, offset, fld.ctype))
            if actual.is_union:
                byte_size = max(byte_size, sub.byte_size)
            else:
                offset += sub.slot_count
                byte_size += sub.byte_size
        slot_count = max(offset, 1) if not actual.is_union else max(
            (layout_of(f.ctype, depth + 1).slot_count for f in actual.fields or []),
            default=1,
        )
        result = Layout(actual, slot_count, max(byte_size, 1), tuple(slots))
    else:
        result = Layout(actual, 1, 4)

    _CACHE[key] = result
    return result


def sizeof_ctype(ctype: CType) -> int:
    return layout_of(ctype).byte_size
