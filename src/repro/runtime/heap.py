"""The instrumented heap: the paper's run-time comparator, from scratch.

The paper contrasts its static checking with run-time tools (dmalloc,
mprof, Purify). This module is the substitute substrate: every memory
object carries its allocation site and a freed flag; every access is
checked; unfreed heap blocks are reported as leaks when the program
ends. Crucially — and this is the behaviour the comparison experiment
exercises — the run-time checker can only flag errors on paths that
actually execute.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..frontend.source import Location


class RuntimeEventKind(enum.Enum):
    NULL_DEREF = "null-dereference"
    USE_AFTER_FREE = "use-after-free"
    DOUBLE_FREE = "double-free"
    INVALID_FREE = "invalid-free"        # offset pointer or non-heap storage
    UNINIT_READ = "uninitialized-read"
    OUT_OF_BOUNDS = "out-of-bounds"
    LEAK = "memory-leak"

    @property
    def error_class(self) -> str:
        """The detector-neutral error-class slug for this event kind.

        This is the vocabulary the difftest verdict comparer uses to line
        runtime events up against static message codes (see
        :data:`repro.messages.message.MEMORY_ERROR_CLASSES`); it differs
        from ``value`` only where the event name isn't already the class
        name (``memory-leak`` → ``leak``).
        """
        return "leak" if self is RuntimeEventKind.LEAK else self.value


@dataclass(frozen=True)
class RuntimeEvent:
    """One detected dynamic memory error (a dmalloc/Purify-style report)."""

    kind: RuntimeEventKind
    location: Location | None
    detail: str
    alloc_site: Location | None = None

    def render(self) -> str:
        where = str(self.location) if self.location else "<unknown>"
        text = f"{where}: runtime {self.kind.value}: {self.detail}"
        if self.alloc_site is not None:
            text += f"\n   allocated at {self.alloc_site}"
        return text


#: Sentinel stored in slots that were never written.
class _Undefined:
    _instance: "_Undefined | None" = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNDEFINED"


UNDEFINED = _Undefined()


@dataclass
class MemObject:
    """A region of storage: a heap block, a variable cell, or a literal."""

    obj_id: int
    kind: str  # 'heap' | 'local' | 'global' | 'static'
    slots: list = field(default_factory=list)
    byte_size: int = 0
    alloc_site: Location | None = None
    freed: bool = False
    label: str = ""

    def in_bounds(self, slot: int) -> bool:
        return 0 <= slot < len(self.slots)


@dataclass(frozen=True)
class Pointer:
    """A typed machine pointer: object + slot offset (None = NULL)."""

    obj: MemObject | None
    slot: int = 0

    @property
    def is_null(self) -> bool:
        return self.obj is None

    def __repr__(self) -> str:
        if self.obj is None:
            return "NULL"
        return f"&{self.obj.label or self.obj.obj_id}+{self.slot}"


NULL = Pointer(None, 0)


class InstrumentedHeap:
    """Allocation bookkeeping plus checked load/store/free primitives."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self.objects: list[MemObject] = []
        self.events: list[RuntimeEvent] = []
        self.alloc_count = 0
        self.free_count = 0
        self.peak_live = 0
        self._live = 0

    # -- allocation ---------------------------------------------------------

    def new_object(
        self,
        kind: str,
        slot_count: int,
        byte_size: int,
        site: Location | None = None,
        label: str = "",
        defined: bool = False,
        fill=0,
    ) -> MemObject:
        initial = fill if defined else UNDEFINED
        obj = MemObject(
            next(self._ids), kind,
            [initial] * max(slot_count, 1),
            byte_size, site, label=label,
        )
        self.objects.append(obj)
        if kind == "heap":
            self.alloc_count += 1
            self._live += 1
            self.peak_live = max(self.peak_live, self._live)
        return obj

    # -- checked operations ----------------------------------------------------

    def report(
        self,
        kind: RuntimeEventKind,
        location: Location | None,
        detail: str,
        alloc_site: Location | None = None,
    ) -> None:
        self.events.append(RuntimeEvent(kind, location, detail, alloc_site))

    def load(self, ptr: Pointer, location: Location | None, what: str = "storage"):
        if ptr.is_null:
            self.report(RuntimeEventKind.NULL_DEREF, location,
                        f"read through null pointer ({what})")
            return 0
        obj = ptr.obj
        assert obj is not None
        if obj.freed:
            self.report(
                RuntimeEventKind.USE_AFTER_FREE, location,
                f"read of freed {what}", obj.alloc_site,
            )
            return 0
        if not obj.in_bounds(ptr.slot):
            self.report(
                RuntimeEventKind.OUT_OF_BOUNDS, location,
                f"read at offset {ptr.slot} of {len(obj.slots)}-slot object",
                obj.alloc_site,
            )
            return 0
        value = obj.slots[ptr.slot]
        if value is UNDEFINED:
            self.report(
                RuntimeEventKind.UNINIT_READ, location,
                f"read of uninitialized {what}", obj.alloc_site,
            )
            return 0
        return value

    def store(self, ptr: Pointer, value, location: Location | None,
              what: str = "storage") -> None:
        if ptr.is_null:
            self.report(RuntimeEventKind.NULL_DEREF, location,
                        f"write through null pointer ({what})")
            return
        obj = ptr.obj
        assert obj is not None
        if obj.freed:
            self.report(
                RuntimeEventKind.USE_AFTER_FREE, location,
                f"write to freed {what}", obj.alloc_site,
            )
            return
        if not obj.in_bounds(ptr.slot):
            self.report(
                RuntimeEventKind.OUT_OF_BOUNDS, location,
                f"write at offset {ptr.slot} of {len(obj.slots)}-slot object",
                obj.alloc_site,
            )
            return
        obj.slots[ptr.slot] = value

    def free(self, ptr: Pointer, location: Location | None) -> None:
        if ptr.is_null:
            return  # free(NULL) is a no-op per ANSI
        obj = ptr.obj
        assert obj is not None
        if obj.kind != "heap":
            self.report(
                RuntimeEventKind.INVALID_FREE, location,
                f"free of non-heap storage ({obj.kind})",
            )
            return
        if obj.freed:
            self.report(
                RuntimeEventKind.DOUBLE_FREE, location,
                "block freed twice", obj.alloc_site,
            )
            return
        if ptr.slot != 0:
            # Section 7: "a few errors involving incorrectly freeing storage
            # resulting from pointer arithmetic" -- the offset-pointer free.
            self.report(
                RuntimeEventKind.INVALID_FREE, location,
                f"free of interior pointer (offset {ptr.slot})", obj.alloc_site,
            )
            return
        obj.freed = True
        self.free_count += 1
        self._live -= 1

    # -- end-of-run reporting ----------------------------------------------------

    def leaked_blocks(self) -> list[MemObject]:
        return [o for o in self.objects if o.kind == "heap" and not o.freed]

    def report_leaks(self) -> int:
        leaks = self.leaked_blocks()
        for obj in leaks:
            self.report(
                RuntimeEventKind.LEAK, obj.alloc_site,
                f"{obj.byte_size} byte(s) never freed", obj.alloc_site,
            )
        return len(leaks)

    @property
    def live_blocks(self) -> int:
        return self._live
