"""An AST interpreter for the supported C subset, with checked memory.

Together with :mod:`repro.runtime.heap` this forms the dynamic-checking
baseline the paper compares against: it executes the program and reports
the memory errors that *actually occur* on the executed paths, exactly
like dmalloc/Purify instrumentation. Errors on unexecuted paths — the
static checker's home turf — are invisible to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend import cast as A
from ..frontend.ctypes import (
    Array,
    CType,
    EnumType,
    FunctionType,
    Pointer as PtrType,
    Primitive,
    StructType,
    strip_typedefs,
)
from ..frontend.source import Location
from ..frontend.symtab import SymbolTable
from .heap import (
    NULL,
    UNDEFINED,
    InstrumentedHeap,
    MemObject,
    Pointer,
    RuntimeEvent,
    RuntimeEventKind,
)
from .layout import layout_of, sizeof_ctype


class InterpreterError(Exception):
    """The program did something the interpreter cannot model."""

    def __init__(self, message: str, location: Location | None = None) -> None:
        where = f"{location}: " if location else ""
        super().__init__(f"{where}{message}")
        self.location = location


class _ExitProgram(Exception):
    def __init__(self, code: int) -> None:
        self.code = code


class _Return(Exception):
    def __init__(self, value) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class StepBudgetExceeded(Exception):
    pass


@dataclass
class RunResult:
    """Outcome of executing a program under the instrumented heap."""

    exit_code: int
    output: str
    events: list[RuntimeEvent]
    steps: int
    allocations: int
    frees: int
    leaked_blocks: int

    def events_of(self, kind: RuntimeEventKind) -> list[RuntimeEvent]:
        return [e for e in self.events if e.kind is kind]

    def error_kinds(self) -> set[RuntimeEventKind]:
        return {e.kind for e in self.events}

    def render_events(self) -> str:
        return "\n".join(e.render() for e in self.events)


@dataclass
class _StructValue:
    """A struct rvalue: a flat copy of its slots."""

    slots: list = field(default_factory=list)


class Interpreter:
    """Execute one program (a set of translation units)."""

    def __init__(
        self,
        units: list[A.TranslationUnit],
        symtab: SymbolTable,
        enum_consts: dict[str, int] | None = None,
        max_steps: int = 2_000_000,
        max_call_depth: int = 256,
    ) -> None:
        self.units = units
        self.symtab = symtab
        self.enum_consts = dict(enum_consts or {})
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self.heap = InstrumentedHeap()
        self.output: list[str] = []
        self.steps = 0
        self.depth = 0
        self._rand_state = 12345
        self.functions: dict[str, A.FunctionDef] = {}
        self.global_cells: dict[str, Pointer] = {}
        self.global_types: dict[str, CType] = {}
        self._scopes: list[dict[str, Pointer]] = []
        self._type_scopes: list[dict[str, CType]] = []
        self._string_cache: dict[str, Pointer] = {}
        for unit in units:
            for fdef in unit.functions():
                self.functions[fdef.name] = fdef
        self._init_globals()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _init_globals(self) -> None:
        for unit in self.units:
            for decl in unit.declarations():
                if decl.is_typedef:
                    continue
                for dtor in decl.declarators:
                    actual = strip_typedefs(dtor.ctype)
                    if isinstance(actual, FunctionType):
                        continue
                    if decl.storage == "extern" and dtor.init is None:
                        # tentative: define it anyway (single-program model)
                        pass
                    if dtor.name in self.global_cells:
                        continue
                    lay = layout_of(dtor.ctype)
                    obj = self.heap.new_object(
                        "global", lay.slot_count, lay.byte_size,
                        dtor.location, label=dtor.name,
                        defined=True, fill=0,
                    )
                    self.global_cells[dtor.name] = Pointer(obj, 0)
                    self.global_types[dtor.name] = dtor.ctype
        # initializers run after all cells exist (C has no ordering issues
        # for the constant initializers this subset supports)
        for unit in self.units:
            for decl in unit.declarations():
                if decl.is_typedef:
                    continue
                for dtor in decl.declarators:
                    if dtor.init is None or dtor.name not in self.global_cells:
                        continue
                    ptr = self.global_cells[dtor.name]
                    value = self._eval_initializer(dtor.init, dtor.ctype)
                    self._store_value(ptr, value, dtor.ctype, dtor.location)

    def _eval_initializer(self, init: A.Expr, ctype: CType):
        if isinstance(init, A.InitList):
            return _StructValue([self.eval(e) for e in init.items])
        return self.eval(init)

    # ------------------------------------------------------------------
    # program execution
    # ------------------------------------------------------------------

    def run(self, entry: str = "main", args: list | None = None) -> RunResult:
        exit_code = 0
        try:
            value = self.call_function(entry, args or [], None)
            if isinstance(value, int):
                exit_code = value
        except _ExitProgram as exc:
            exit_code = exc.code
        except StepBudgetExceeded:
            exit_code = -1
        leaked = self.heap.report_leaks()
        return RunResult(
            exit_code=exit_code,
            output="".join(self.output),
            events=list(self.heap.events),
            steps=self.steps,
            allocations=self.heap.alloc_count,
            frees=self.heap.free_count,
            leaked_blocks=leaked,
        )

    def call_function(self, name: str, args: list, loc: Location | None):
        builtin = _BUILTINS.get(name)
        if builtin is not None and name not in self.functions:
            return builtin(self, args, loc)
        fdef = self.functions.get(name)
        if fdef is None:
            raise InterpreterError(f"call to undefined function {name!r}", loc)
        if self.depth >= self.max_call_depth:
            raise InterpreterError(f"call depth exceeded in {name!r}", loc)
        self.depth += 1
        frame: dict[str, Pointer] = {}
        frame_types: dict[str, CType] = {}
        for i, param in enumerate(fdef.params):
            if param.name is None:
                continue
            lay = layout_of(param.ctype)
            cell = self.heap.new_object(
                "local", lay.slot_count, lay.byte_size, param.location,
                label=param.name, defined=False,
            )
            value = args[i] if i < len(args) else 0
            self._store_value(Pointer(cell, 0), value, param.ctype, param.location)
            frame[param.name] = Pointer(cell, 0)
            frame_types[param.name] = param.ctype
        self._scopes.append(frame)
        self._type_scopes.append(frame_types)
        try:
            self.exec_stmt(fdef.body)
            result = 0
        except _Return as ret:
            result = ret.value
        finally:
            self._scopes.pop()
            self._type_scopes.pop()
            self.depth -= 1
        ftype = strip_typedefs(fdef.ctype)
        assert isinstance(ftype, FunctionType)
        return self._coerce(result, ftype.ret, loc)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _tick(self, loc: Location | None = None) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise StepBudgetExceeded()

    def exec_stmt(self, stmt: A.Node) -> None:
        self._tick(getattr(stmt, "location", None))
        method = getattr(self, f"_exec_{type(stmt).__name__.lower()}", None)
        if method is None:
            raise InterpreterError(
                f"unsupported statement {type(stmt).__name__}",
                getattr(stmt, "location", None),
            )
        method(stmt)

    def _exec_block(self, stmt: A.Block) -> None:
        self._scopes.append({})
        self._type_scopes.append({})
        try:
            for item in stmt.items:
                self.exec_stmt(item)
        finally:
            self._scopes.pop()
            self._type_scopes.pop()

    def _exec_declaration(self, decl: A.Declaration) -> None:
        for dtor in decl.declarators:
            if dtor.name is None or decl.is_typedef:
                continue
            actual = strip_typedefs(dtor.ctype)
            if isinstance(actual, FunctionType):
                continue
            lay = layout_of(dtor.ctype)
            cell = self.heap.new_object(
                "local", lay.slot_count, lay.byte_size, dtor.location,
                label=dtor.name, defined=(decl.storage == "static"), fill=0,
            )
            self._scopes[-1][dtor.name] = Pointer(cell, 0)
            self._type_scopes[-1][dtor.name] = dtor.ctype
            if dtor.init is not None:
                value = self._eval_initializer(dtor.init, dtor.ctype)
                self._store_value(Pointer(cell, 0), value, dtor.ctype,
                                  dtor.location)

    def _exec_exprstmt(self, stmt: A.ExprStmt) -> None:
        self.eval(stmt.expr)

    def _exec_emptystmt(self, stmt: A.EmptyStmt) -> None:
        pass

    def _exec_if(self, stmt: A.If) -> None:
        if self._truthy(self.eval(stmt.cond)):
            self.exec_stmt(stmt.then)
        elif stmt.orelse is not None:
            self.exec_stmt(stmt.orelse)

    def _exec_while(self, stmt: A.While) -> None:
        while self._truthy(self.eval(stmt.cond)):
            self._tick(stmt.location)
            try:
                self.exec_stmt(stmt.body)
            except _Break:
                break
            except _Continue:
                continue

    def _exec_dowhile(self, stmt: A.DoWhile) -> None:
        while True:
            self._tick(stmt.location)
            try:
                self.exec_stmt(stmt.body)
            except _Break:
                break
            except _Continue:
                pass
            if not self._truthy(self.eval(stmt.cond)):
                break

    def _exec_for(self, stmt: A.For) -> None:
        self._scopes.append({})
        self._type_scopes.append({})
        try:
            if stmt.init is not None:
                self.exec_stmt(stmt.init)
            while stmt.cond is None or self._truthy(self.eval(stmt.cond)):
                self._tick(stmt.location)
                try:
                    self.exec_stmt(stmt.body)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self.eval(stmt.step)
        finally:
            self._scopes.pop()
            self._type_scopes.pop()

    def _exec_switch(self, stmt: A.Switch) -> None:
        value = self.eval(stmt.cond)
        body = stmt.body
        if not isinstance(body, A.Block):
            self.exec_stmt(body)
            return
        # find matching case (or default) index, then execute with
        # fallthrough; empty cases nest ('case 0: case 1: stmt'), so each
        # label chain is walked.
        start: int | None = None
        default_at: int | None = None
        for i, item in enumerate(body.items):
            if isinstance(item, A.Case):
                chain = item
                matched = False
                while isinstance(chain, A.Case):
                    if chain.value is None:
                        if default_at is None:
                            default_at = i
                    elif self.eval(chain.value) == value:
                        matched = True
                        break
                    chain = chain.body
                if matched:
                    start = i
                    break
        if start is None:
            start = default_at
        if start is None:
            return
        try:
            for item in body.items[start:]:
                if isinstance(item, A.Case):
                    self.exec_stmt(item.body)
                else:
                    self.exec_stmt(item)
        except _Break:
            pass

    def _exec_case(self, stmt: A.Case) -> None:
        self.exec_stmt(stmt.body)

    def _exec_break(self, stmt: A.Break) -> None:
        raise _Break()

    def _exec_continue(self, stmt: A.Continue) -> None:
        raise _Continue()

    def _exec_return(self, stmt: A.Return) -> None:
        value = self.eval(stmt.value) if stmt.value is not None else 0
        raise _Return(value)

    def _exec_label(self, stmt: A.Label) -> None:
        self.exec_stmt(stmt.body)

    def _exec_goto(self, stmt: A.Goto) -> None:
        raise InterpreterError("goto is not supported by the interpreter",
                               stmt.location)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def eval(self, expr: A.Expr):
        self._tick(expr.location)
        method = getattr(self, f"_eval_{type(expr).__name__.lower()}", None)
        if method is None:
            raise InterpreterError(
                f"unsupported expression {type(expr).__name__}", expr.location
            )
        return method(expr)

    def lvalue(self, expr: A.Expr) -> Pointer:
        """Evaluate an expression to a storage location."""
        if isinstance(expr, A.Ident):
            ptr = self._lookup(expr.name)
            if ptr is None:
                raise InterpreterError(f"unknown variable {expr.name!r}",
                                       expr.location)
            return ptr
        if isinstance(expr, A.Unary) and expr.op == "*":
            target = self.eval(expr.operand)
            return self._as_pointer(target, expr.location)
        if isinstance(expr, A.Member):
            if expr.arrow:
                base_ptr = self._as_pointer(self.eval(expr.obj), expr.location)
                base_type = self._pointee_type(self.type_of(expr.obj))
            else:
                base_ptr = self.lvalue(expr.obj)
                base_type = self.type_of(expr.obj)
            if base_ptr.is_null:
                self.heap.report(
                    RuntimeEventKind.NULL_DEREF, expr.location,
                    f"field access ->{expr.fieldname} through null pointer",
                )
                raise _ExitProgram(139)  # segfault
            lay = layout_of(base_type) if base_type is not None else None
            fld = lay.field(expr.fieldname) if lay is not None else None
            offset = fld.slot if fld is not None else 0
            return Pointer(base_ptr.obj, base_ptr.slot + offset)
        if isinstance(expr, A.Index):
            base = self.eval(expr.array)
            index = self.eval(expr.index)
            ptr = self._as_pointer(base, expr.location, allow_array=expr.array)
            elem = self._pointee_type(self.type_of(expr.array))
            stride = layout_of(elem).slot_count if elem is not None else 1
            if ptr.is_null:
                self.heap.report(
                    RuntimeEventKind.NULL_DEREF, expr.location,
                    "index through null pointer",
                )
                raise _ExitProgram(139)
            return Pointer(ptr.obj, ptr.slot + int(index) * stride)
        if isinstance(expr, A.Cast):
            return self.lvalue(expr.operand)
        raise InterpreterError(
            f"expression is not an lvalue: {type(expr).__name__}", expr.location
        )

    # -- leaf expressions ---------------------------------------------------

    def _eval_intlit(self, expr: A.IntLit):
        return expr.value

    def _eval_floatlit(self, expr: A.FloatLit):
        return expr.value

    def _eval_charlit(self, expr: A.CharLit):
        return expr.value

    def _eval_stringlit(self, expr: A.StringLit) -> Pointer:
        cached = self._string_cache.get(expr.value)
        if cached is not None:
            return cached
        data = [ord(c) for c in expr.value] + [0]
        obj = self.heap.new_object(
            "static", len(data), len(data), expr.location,
            label=f'"{expr.value[:12]}"', defined=True,
        )
        obj.slots = data
        ptr = Pointer(obj, 0)
        self._string_cache[expr.value] = ptr
        return ptr

    def _eval_ident(self, expr: A.Ident):
        if expr.name in self.enum_consts:
            return self.enum_consts[expr.name]
        ptr = self._lookup(expr.name)
        if ptr is None:
            if expr.name in self.functions or expr.name in _BUILTINS:
                return expr.name  # function designator
            raise InterpreterError(f"unknown identifier {expr.name!r}",
                                   expr.location)
        ctype = self.type_of(expr)
        actual = strip_typedefs(ctype) if ctype is not None else None
        if isinstance(actual, Array):
            return Pointer(ptr.obj, ptr.slot)  # array decays to pointer
        if isinstance(actual, StructType):
            lay = layout_of(actual)
            assert ptr.obj is not None
            return _StructValue(
                list(ptr.obj.slots[ptr.slot : ptr.slot + lay.slot_count])
            )
        return self.heap.load(ptr, expr.location, expr.name)

    # -- operators ------------------------------------------------------------

    def _eval_unary(self, expr: A.Unary):
        op = expr.op
        if op == "*":
            ptr = self._as_pointer(self.eval(expr.operand), expr.location)
            if ptr.is_null:
                self.heap.report(RuntimeEventKind.NULL_DEREF, expr.location,
                                 "dereference of null pointer")
                raise _ExitProgram(139)
            pointee = self._pointee_type(self.type_of(expr.operand))
            actual = strip_typedefs(pointee) if pointee is not None else None
            if isinstance(actual, StructType):
                lay = layout_of(actual)
                assert ptr.obj is not None
                return _StructValue(
                    list(ptr.obj.slots[ptr.slot : ptr.slot + lay.slot_count])
                )
            return self.heap.load(ptr, expr.location)
        if op == "&":
            return self.lvalue(expr.operand)
        if op == "!":
            return 0 if self._truthy(self.eval(expr.operand)) else 1
        if op == "-":
            return -self.eval(expr.operand)
        if op == "+":
            return self.eval(expr.operand)
        if op == "~":
            return ~int(self.eval(expr.operand))
        if op in ("++", "--", "p++", "p--"):
            ptr = self.lvalue(expr.operand)
            old = self.heap.load(ptr, expr.location)
            delta = 1 if "+" in op else -1
            if isinstance(old, Pointer):
                elem = self._pointee_type(self.type_of(expr.operand))
                stride = layout_of(elem).slot_count if elem is not None else 1
                new = Pointer(old.obj, old.slot + delta * stride)
            else:
                new = old + delta
            self.heap.store(ptr, new, expr.location)
            return old if op.startswith("p") else new
        raise InterpreterError(f"unsupported unary {op!r}", expr.location)

    def _eval_binary(self, expr: A.Binary):
        op = expr.op
        if op == "&&":
            return (
                1
                if self._truthy(self.eval(expr.lhs))
                and self._truthy(self.eval(expr.rhs))
                else 0
            )
        if op == "||":
            return (
                1
                if self._truthy(self.eval(expr.lhs))
                or self._truthy(self.eval(expr.rhs))
                else 0
            )
        lhs = self.eval(expr.lhs)
        rhs = self.eval(expr.rhs)
        if isinstance(lhs, Pointer) or isinstance(rhs, Pointer):
            return self._pointer_binary(op, lhs, rhs, expr)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            table = {
                "==": lhs == rhs, "!=": lhs != rhs, "<": lhs < rhs,
                ">": lhs > rhs, "<=": lhs <= rhs, ">=": lhs >= rhs,
            }
            return 1 if table[op] else 0
        if op == "/" and rhs == 0:
            raise _ExitProgram(136)  # SIGFPE
        if op == "%" and rhs == 0:
            raise _ExitProgram(136)
        if op in ("<<", ">>", "&", "|", "^", "%"):
            lhs, rhs = int(lhs), int(rhs)
        result = {
            "+": lambda: lhs + rhs,
            "-": lambda: lhs - rhs,
            "*": lambda: lhs * rhs,
            "/": lambda: (lhs // rhs)
            if isinstance(lhs, int) and isinstance(rhs, int)
            else lhs / rhs,
            "%": lambda: lhs - rhs * (lhs // rhs),
            "<<": lambda: lhs << rhs,
            ">>": lambda: lhs >> rhs,
            "&": lambda: lhs & rhs,
            "|": lambda: lhs | rhs,
            "^": lambda: lhs ^ rhs,
        }[op]()
        return result

    def _pointer_binary(self, op: str, lhs, rhs, expr: A.Binary):
        def key(v):
            if isinstance(v, Pointer):
                return (id(v.obj) if v.obj is not None else 0, v.slot)
            return (0, v)

        if op in ("==", "!="):
            same = key(lhs) == key(rhs)
            if isinstance(lhs, int) and lhs == 0:
                same = isinstance(rhs, Pointer) and rhs.is_null
            if isinstance(rhs, int) and rhs == 0:
                same = isinstance(lhs, Pointer) and lhs.is_null
            return 1 if (same if op == "==" else not same) else 0
        if op in ("<", ">", "<=", ">="):
            a, b = key(lhs), key(rhs)
            table = {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b}
            return 1 if table[op] else 0
        if op in ("+", "-"):
            ptr, offset = (lhs, rhs) if isinstance(lhs, Pointer) else (rhs, lhs)
            if isinstance(lhs, Pointer) and isinstance(rhs, Pointer):
                if op == "-":
                    return lhs.slot - rhs.slot
                raise InterpreterError("pointer + pointer", expr.location)
            side = expr.lhs if isinstance(lhs, Pointer) else expr.rhs
            elem = self._pointee_type(self.type_of(side))
            stride = layout_of(elem).slot_count if elem is not None else 1
            delta = int(offset) * stride
            if op == "-":
                delta = -delta
            if ptr.is_null:
                return ptr
            return Pointer(ptr.obj, ptr.slot + delta)
        raise InterpreterError(f"unsupported pointer operation {op!r}",
                               expr.location)

    def _eval_assign(self, expr: A.Assign):
        if expr.op == "=":
            value = self.eval(expr.value)
            ptr = self.lvalue(expr.target)
            ctype = self.type_of(expr.target)
            return self._store_value(ptr, value, ctype, expr.location)
        # compound assignment
        ptr = self.lvalue(expr.target)
        old = self.heap.load(ptr, expr.location)
        rhs = self.eval(expr.value)
        binop = expr.op[:-1]
        if isinstance(old, Pointer):
            fake = A.Binary(expr.location, op=binop, lhs=expr.target,
                            rhs=expr.value)
            new = self._pointer_binary(binop, old, rhs, fake)
        else:
            table = {
                "+": old + rhs, "-": old - rhs, "*": old * rhs,
                "/": old // rhs if isinstance(old, int) and rhs else (
                    old / rhs if rhs else 0),
                "%": old % rhs if rhs else 0,
                "<<": int(old) << int(rhs), ">>": int(old) >> int(rhs),
                "&": int(old) & int(rhs), "|": int(old) | int(rhs),
                "^": int(old) ^ int(rhs),
            }
            new = table[binop]
        self.heap.store(ptr, new, expr.location)
        return new

    def _eval_ternary(self, expr: A.Ternary):
        if self._truthy(self.eval(expr.cond)):
            return self.eval(expr.then)
        return self.eval(expr.other)

    def _eval_comma(self, expr: A.Comma):
        value = 0
        for item in expr.exprs:
            value = self.eval(item)
        return value

    def _eval_cast(self, expr: A.Cast):
        value = self.eval(expr.operand)
        return self._coerce(value, expr.to_type, expr.location)

    def _eval_sizeofexpr(self, expr: A.SizeofExpr):
        ctype = self.type_of(expr.operand)
        return sizeof_ctype(ctype) if ctype is not None else 8

    def _eval_sizeoftype(self, expr: A.SizeofType):
        return sizeof_ctype(expr.of_type)

    def _eval_member(self, expr: A.Member):
        ptr = self.lvalue(expr)
        ctype = self.type_of(expr)
        actual = strip_typedefs(ctype) if ctype is not None else None
        if isinstance(actual, StructType):
            lay = layout_of(actual)
            assert ptr.obj is not None
            return _StructValue(
                list(ptr.obj.slots[ptr.slot : ptr.slot + lay.slot_count])
            )
        if isinstance(actual, Array):
            return Pointer(ptr.obj, ptr.slot)
        return self.heap.load(ptr, expr.location, expr.fieldname)

    def _eval_index(self, expr: A.Index):
        ptr = self.lvalue(expr)
        ctype = self.type_of(expr)
        actual = strip_typedefs(ctype) if ctype is not None else None
        if isinstance(actual, StructType):
            lay = layout_of(actual)
            assert ptr.obj is not None
            return _StructValue(
                list(ptr.obj.slots[ptr.slot : ptr.slot + lay.slot_count])
            )
        if isinstance(actual, Array):
            return Pointer(ptr.obj, ptr.slot)
        return self.heap.load(ptr, expr.location)

    def _eval_call(self, expr: A.Call):
        if isinstance(expr.func, A.Ident):
            name = expr.func.name
            if name not in self.functions and name not in _BUILTINS:
                # maybe a function-pointer variable holding a designator
                cell = self._lookup(name)
                if cell is not None:
                    held = self.heap.load(cell, expr.location, name)
                    if isinstance(held, str):
                        name = held
        else:
            name = self.eval(expr.func)
            if isinstance(name, Pointer):
                raise InterpreterError("call through data pointer",
                                       expr.location)
        args = [self.eval(a) for a in expr.args]
        # Coerce arguments to the declared parameter types so that raw
        # malloc blocks passed directly to typed parameters get typed.
        sig = self.symtab.function(name) if isinstance(name, str) else None
        if sig is not None:
            coerced = []
            for i, arg in enumerate(args):
                if i < len(sig.params):
                    coerced.append(
                        self._coerce(arg, sig.params[i].ctype, expr.location)
                    )
                else:
                    coerced.append(arg)
            args = coerced
        return self.call_function(name, args, expr.location)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _lookup(self, name: str) -> Pointer | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return self.global_cells.get(name)

    def _lookup_type(self, name: str) -> CType | None:
        for scope in reversed(self._type_scopes):
            if name in scope:
                return scope[name]
        return self.global_types.get(name)

    def _truthy(self, value) -> bool:
        if isinstance(value, Pointer):
            return not value.is_null
        if isinstance(value, _StructValue):
            return True
        if value is UNDEFINED:
            return False
        return bool(value)

    def _as_pointer(self, value, loc: Location | None,
                    allow_array: A.Expr | None = None) -> Pointer:
        if isinstance(value, Pointer):
            return value
        if isinstance(value, int) and value == 0:
            return NULL
        raise InterpreterError(f"expected a pointer, got {value!r}", loc)

    def _pointee_type(self, ctype: CType | None) -> CType | None:
        if ctype is None:
            return None
        actual = strip_typedefs(ctype)
        if isinstance(actual, (PtrType, Array)):
            return actual.pointee()
        return None

    def _store_value(self, ptr: Pointer, value, ctype: CType | None,
                     loc: Location | None):
        value = self._coerce(value, ctype, loc) if ctype is not None else value
        if isinstance(value, _StructValue):
            assert ptr.obj is not None
            for i, slot_value in enumerate(value.slots):
                self.heap.store(Pointer(ptr.obj, ptr.slot + i), slot_value, loc)
            return value
        self.heap.store(ptr, value, loc)
        return value

    def _coerce(self, value, ctype: CType | None, loc: Location | None):
        if ctype is None:
            return value
        actual = strip_typedefs(ctype)
        if isinstance(actual, PtrType):
            if isinstance(value, int) and value == 0:
                return NULL
            if isinstance(value, Pointer):
                self._maybe_retype(value, actual.pointee())
                return value
            return value
        if isinstance(actual, Primitive) and actual.name == "char":
            if isinstance(value, int):
                return value & 0xFF if value >= 0 else value
        if isinstance(actual, Primitive) and actual.is_integral:
            if isinstance(value, float):
                return int(value)
        return value

    def _maybe_retype(self, ptr: Pointer, target: CType | None) -> None:
        """Type a raw malloc block the first time it is used as a T*."""
        obj = ptr.obj
        if obj is None or target is None or ptr.slot != 0:
            return
        if not getattr(obj, "_raw", False):
            return
        lay = layout_of(target)
        actual = strip_typedefs(target)
        if isinstance(actual, Primitive) and actual.is_void:
            return
        count = max(1, obj.byte_size // max(lay.byte_size, 1))
        fill = 0 if getattr(obj, "_zeroed", False) else UNDEFINED
        obj.slots = [fill] * (count * lay.slot_count)
        obj._raw = False  # type: ignore[attr-defined]

    # -- expression typing (static types drive layout decisions) -----------

    def type_of(self, expr: A.Expr) -> CType | None:
        if isinstance(expr, A.Ident):
            found = self._lookup_type(expr.name)
            if found is not None:
                return found
            sig = self.symtab.function(expr.name)
            if sig is not None:
                return sig.ret_type
            gvar = self.symtab.global_var(expr.name)
            return gvar.ctype if gvar is not None else None
        if isinstance(expr, A.Cast):
            return expr.to_type
        if isinstance(expr, A.Unary):
            if expr.op == "*":
                return self._pointee_type(self.type_of(expr.operand))
            if expr.op == "&":
                inner = self.type_of(expr.operand)
                return PtrType(inner) if inner is not None else None
            return self.type_of(expr.operand)
        if isinstance(expr, A.Member):
            base = self.type_of(expr.obj)
            if base is None:
                return None
            target = self._pointee_type(base) if expr.arrow else base
            if target is None:
                return None
            actual = strip_typedefs(target)
            if isinstance(actual, StructType):
                fld = actual.field_named(expr.fieldname)
                return fld.ctype if fld is not None else None
            return None
        if isinstance(expr, A.Index):
            return self._pointee_type(self.type_of(expr.array))
        if isinstance(expr, A.Call):
            if isinstance(expr.func, A.Ident):
                sig = self.symtab.function(expr.func.name)
                if sig is not None:
                    return sig.ret_type
            return None
        if isinstance(expr, A.Assign):
            return self.type_of(expr.target)
        if isinstance(expr, A.Ternary):
            return self.type_of(expr.then) or self.type_of(expr.other)
        if isinstance(expr, A.Binary):
            lhs = self.type_of(expr.lhs)
            rhs = self.type_of(expr.rhs)
            from ..frontend.ctypes import is_pointerish

            if lhs is not None and is_pointerish(lhs):
                return lhs
            if rhs is not None and is_pointerish(rhs):
                return rhs
            return lhs or rhs
        if isinstance(expr, A.StringLit):
            return PtrType(Primitive("char"))
        if isinstance(expr, (A.IntLit, A.CharLit, A.SizeofExpr, A.SizeofType)):
            return Primitive("int")
        if isinstance(expr, A.FloatLit):
            return Primitive("double")
        if isinstance(expr, A.Comma) and expr.exprs:
            return self.type_of(expr.exprs[-1])
        return None

    # -- string helpers for builtins -------------------------------------------

    def read_c_string(self, ptr: Pointer, loc: Location | None,
                      limit: int = 65536) -> str:
        chars: list[str] = []
        cur = ptr
        for _ in range(limit):
            value = self.heap.load(cur, loc, "string")
            if not isinstance(value, int) or value == 0:
                break
            chars.append(chr(value & 0x10FFFF))
            cur = Pointer(cur.obj, cur.slot + 1)
        return "".join(chars)


# ---------------------------------------------------------------------------
# builtin (standard library) models
# ---------------------------------------------------------------------------


def _bi_malloc(interp: Interpreter, args, loc):
    size = int(args[0]) if args else 0
    obj = interp.heap.new_object("heap", max(size, 1), max(size, 1), loc,
                                 label="malloc")
    obj._raw = True  # type: ignore[attr-defined]
    return Pointer(obj, 0)


def _bi_calloc(interp: Interpreter, args, loc):
    n = int(args[0]) if args else 0
    size = int(args[1]) if len(args) > 1 else 1
    total = max(n * size, 1)
    obj = interp.heap.new_object("heap", total, total, loc, label="calloc",
                                 defined=True, fill=0)
    obj._raw = True  # type: ignore[attr-defined]
    obj._zeroed = True  # type: ignore[attr-defined]
    return Pointer(obj, 0)


def _bi_free(interp: Interpreter, args, loc):
    ptr = args[0] if args else NULL
    if isinstance(ptr, int) and ptr == 0:
        ptr = NULL
    if not isinstance(ptr, Pointer):
        interp.heap.report(RuntimeEventKind.INVALID_FREE, loc,
                           f"free of non-pointer value {ptr!r}")
        return 0
    interp.heap.free(ptr, loc)
    return 0


def _bi_realloc(interp: Interpreter, args, loc):
    ptr = args[0] if args else NULL
    size = int(args[1]) if len(args) > 1 else 0
    new = _bi_malloc(interp, [size], loc)
    if isinstance(ptr, Pointer) and not ptr.is_null and ptr.obj is not None:
        old = ptr.obj
        assert new.obj is not None
        keep = min(len(old.slots), len(new.obj.slots))
        new.obj.slots[:keep] = old.slots[:keep]
        new.obj._raw = getattr(old, "_raw", False)  # type: ignore[attr-defined]
        interp.heap.free(ptr, loc)
    return new


def _bi_exit(interp: Interpreter, args, loc):
    raise _ExitProgram(int(args[0]) if args else 0)


def _bi_abort(interp: Interpreter, args, loc):
    raise _ExitProgram(134)


def _bi_assert(interp: Interpreter, args, loc):
    if args and not interp._truthy(args[0]):
        interp.output.append("assertion failed\n")
        raise _ExitProgram(134)
    return 0


def _bi_strlen(interp: Interpreter, args, loc):
    return len(interp.read_c_string(args[0], loc))


def _bi_strcpy(interp: Interpreter, args, loc):
    dst, src = args[0], args[1]
    i = 0
    while True:
        ch = interp.heap.load(Pointer(src.obj, src.slot + i), loc, "strcpy src")
        interp.heap.store(Pointer(dst.obj, dst.slot + i), ch, loc, "strcpy dst")
        if not isinstance(ch, int) or ch == 0:
            break
        i += 1
        if i > 65536:
            break
    return dst


def _bi_strncpy(interp: Interpreter, args, loc):
    dst, src, n = args[0], args[1], int(args[2])
    done = False
    for i in range(n):
        ch = 0 if done else interp.heap.load(
            Pointer(src.obj, src.slot + i), loc, "strncpy src"
        )
        if ch == 0:
            done = True
        interp.heap.store(Pointer(dst.obj, dst.slot + i), ch if not done else 0,
                          loc, "strncpy dst")
    return dst


def _bi_strcmp(interp: Interpreter, args, loc):
    a = interp.read_c_string(args[0], loc)
    b = interp.read_c_string(args[1], loc)
    return 0 if a == b else (-1 if a < b else 1)


def _bi_strncmp(interp: Interpreter, args, loc):
    n = int(args[2])
    a = interp.read_c_string(args[0], loc)[:n]
    b = interp.read_c_string(args[1], loc)[:n]
    return 0 if a == b else (-1 if a < b else 1)


def _bi_strcat(interp: Interpreter, args, loc):
    dst, src = args[0], args[1]
    offset = len(interp.read_c_string(dst, loc))
    shifted = Pointer(dst.obj, dst.slot + offset)
    _bi_strcpy(interp, [shifted, src], loc)
    return dst


def _bi_strchr(interp: Interpreter, args, loc):
    text = interp.read_c_string(args[0], loc)
    target = chr(int(args[1]) & 0xFF)
    idx = text.find(target)
    if idx < 0:
        return NULL
    base = args[0]
    return Pointer(base.obj, base.slot + idx)


def _bi_memset(interp: Interpreter, args, loc):
    ptr, value, n = args[0], int(args[1]), int(args[2])
    if isinstance(ptr, Pointer) and ptr.obj is not None:
        count = min(n, len(ptr.obj.slots) - ptr.slot)
        for i in range(max(count, 0)):
            interp.heap.store(Pointer(ptr.obj, ptr.slot + i), value, loc)
    return ptr


def _bi_memcpy(interp: Interpreter, args, loc):
    dst, src, n = args[0], args[1], int(args[2])
    if isinstance(dst, Pointer) and isinstance(src, Pointer) and dst.obj and src.obj:
        count = min(n, len(src.obj.slots) - src.slot,
                    len(dst.obj.slots) - dst.slot)
        for i in range(max(count, 0)):
            value = interp.heap.load(Pointer(src.obj, src.slot + i), loc)
            interp.heap.store(Pointer(dst.obj, dst.slot + i), value, loc)
    return dst


def _format_printf(interp: Interpreter, fmt: str, args: list, loc) -> str:
    out: list[str] = []
    i = 0
    argi = 0

    def next_arg():
        nonlocal argi
        value = args[argi] if argi < len(args) else 0
        argi += 1
        return value

    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        # skip flags/width/length
        while i < len(fmt) and fmt[i] in "-+ 0123456789.lhz":
            i += 1
        if i >= len(fmt):
            break
        conv = fmt[i]
        i += 1
        if conv == "%":
            out.append("%")
        elif conv in "di":
            out.append(str(int(next_arg())))
        elif conv == "u":
            out.append(str(int(next_arg())))
        elif conv == "c":
            out.append(chr(int(next_arg()) & 0x10FFFF))
        elif conv == "s":
            value = next_arg()
            out.append(
                interp.read_c_string(value, loc)
                if isinstance(value, Pointer)
                else str(value)
            )
        elif conv in "fge":
            out.append(f"{float(next_arg()):g}")
        elif conv in "xX":
            out.append(format(int(next_arg()), conv))
        elif conv == "p":
            out.append(repr(next_arg()))
        else:
            out.append(conv)
    return "".join(out)


def _bi_printf(interp: Interpreter, args, loc):
    fmt = interp.read_c_string(args[0], loc) if args else ""
    text = _format_printf(interp, fmt, args[1:], loc)
    interp.output.append(text)
    return len(text)


def _bi_fprintf(interp: Interpreter, args, loc):
    fmt = interp.read_c_string(args[1], loc) if len(args) > 1 else ""
    text = _format_printf(interp, fmt, args[2:], loc)
    interp.output.append(text)
    return len(text)


def _bi_sprintf(interp: Interpreter, args, loc):
    dst = args[0]
    fmt = interp.read_c_string(args[1], loc) if len(args) > 1 else ""
    text = _format_printf(interp, fmt, args[2:], loc)
    for i, ch in enumerate(text):
        interp.heap.store(Pointer(dst.obj, dst.slot + i), ord(ch), loc)
    interp.heap.store(Pointer(dst.obj, dst.slot + len(text)), 0, loc)
    return len(text)


def _bi_puts(interp: Interpreter, args, loc):
    text = interp.read_c_string(args[0], loc) if args else ""
    interp.output.append(text + "\n")
    return 0


def _bi_putchar(interp: Interpreter, args, loc):
    interp.output.append(chr(int(args[0]) & 0x10FFFF))
    return int(args[0])


def _bi_rand(interp: Interpreter, args, loc):
    interp._rand_state = (interp._rand_state * 1103515245 + 12345) & 0x7FFFFFFF
    return interp._rand_state % 32768


def _bi_srand(interp: Interpreter, args, loc):
    interp._rand_state = int(args[0]) if args else 0
    return 0


def _bi_atoi(interp: Interpreter, args, loc):
    text = interp.read_c_string(args[0], loc).strip()
    sign = 1
    if text.startswith(("-", "+")):
        sign = -1 if text[0] == "-" else 1
        text = text[1:]
    digits = ""
    for ch in text:
        if not ch.isdigit():
            break
        digits += ch
    return sign * int(digits) if digits else 0


def _bi_abs(interp: Interpreter, args, loc):
    return abs(int(args[0])) if args else 0


def _bi_memcmp(interp: Interpreter, args, loc):
    a, b, n = args[0], args[1], int(args[2])
    for i in range(n):
        va = interp.heap.load(Pointer(a.obj, a.slot + i), loc, "memcmp")
        vb = interp.heap.load(Pointer(b.obj, b.slot + i), loc, "memcmp")
        if va != vb:
            return -1 if va < vb else 1
    return 0


def _bi_strrchr(interp: Interpreter, args, loc):
    text = interp.read_c_string(args[0], loc)
    target = chr(int(args[1]) & 0xFF)
    idx = text.rfind(target)
    if idx < 0:
        return NULL
    base = args[0]
    return Pointer(base.obj, base.slot + idx)


def _bi_strstr(interp: Interpreter, args, loc):
    hay = interp.read_c_string(args[0], loc)
    needle = interp.read_c_string(args[1], loc)
    idx = hay.find(needle)
    if idx < 0:
        return NULL
    base = args[0]
    return Pointer(base.obj, base.slot + idx)


def _bi_isalpha(interp: Interpreter, args, loc):
    return 1 if chr(int(args[0]) & 0x10FFFF).isalpha() else 0


def _bi_isdigit(interp: Interpreter, args, loc):
    return 1 if chr(int(args[0]) & 0x10FFFF).isdigit() else 0


def _bi_isspace(interp: Interpreter, args, loc):
    return 1 if chr(int(args[0]) & 0x10FFFF).isspace() else 0


def _bi_isupper(interp: Interpreter, args, loc):
    return 1 if chr(int(args[0]) & 0x10FFFF).isupper() else 0


def _bi_islower(interp: Interpreter, args, loc):
    return 1 if chr(int(args[0]) & 0x10FFFF).islower() else 0


def _bi_toupper(interp: Interpreter, args, loc):
    return ord(chr(int(args[0]) & 0x10FFFF).upper()[:1] or "\0")


def _bi_tolower(interp: Interpreter, args, loc):
    return ord(chr(int(args[0]) & 0x10FFFF).lower()[:1] or "\0")


_BUILTINS = {
    "malloc": _bi_malloc,
    "calloc": _bi_calloc,
    "realloc": _bi_realloc,
    "free": _bi_free,
    "exit": _bi_exit,
    "abort": _bi_abort,
    "assert": _bi_assert,
    "strlen": _bi_strlen,
    "strcpy": _bi_strcpy,
    "strncpy": _bi_strncpy,
    "strcmp": _bi_strcmp,
    "strncmp": _bi_strncmp,
    "strcat": _bi_strcat,
    "strchr": _bi_strchr,
    "memset": _bi_memset,
    "memcpy": _bi_memcpy,
    "printf": _bi_printf,
    "fprintf": _bi_fprintf,
    "sprintf": _bi_sprintf,
    "puts": _bi_puts,
    "putchar": _bi_putchar,
    "rand": _bi_rand,
    "srand": _bi_srand,
    "atoi": _bi_atoi,
    "abs": _bi_abs,
    "labs": _bi_abs,
    "memcmp": _bi_memcmp,
    "strrchr": _bi_strrchr,
    "strstr": _bi_strstr,
    "isalpha": _bi_isalpha,
    "isdigit": _bi_isdigit,
    "isspace": _bi_isspace,
    "isupper": _bi_isupper,
    "islower": _bi_islower,
    "toupper": _bi_toupper,
    "tolower": _bi_tolower,
}


def run_program(
    source: str | dict[str, str],
    entry: str = "main",
    max_steps: int = 2_000_000,
    flags=None,
) -> RunResult:
    """Parse and execute a C program under the instrumented heap.

    ``source`` is either one translation unit's text or a dict of named
    files (headers resolve for ``#include``). The program's annotations
    are ignored at run time — this baseline sees only executions.
    """
    from ..core.api import Checker

    checker = Checker(flags=flags)
    if isinstance(source, str):
        parsed = [checker.parse_unit(source, "<program>")]
    else:
        parsed = []
        for name, text in source.items():
            if name.endswith(".h"):
                checker.sources.add(name, text)
        for name, text in source.items():
            if not name.endswith(".h"):
                parsed.append(checker.parse_unit(text, name))
    symtab = SymbolTable()
    enum_consts: dict[str, int] = {}
    for pu in parsed:
        symtab.add_unit(pu.unit)
        enum_consts.update(pu.enum_consts)
    interp = Interpreter(
        [pu.unit for pu in parsed], symtab, enum_consts, max_steps=max_steps
    )
    return interp.run(entry)
