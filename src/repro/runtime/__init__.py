"""Run-time memory-error detection: the paper's dynamic-tool baseline."""

from .heap import (
    NULL,
    UNDEFINED,
    InstrumentedHeap,
    MemObject,
    Pointer,
    RuntimeEvent,
    RuntimeEventKind,
)
from .interp import Interpreter, InterpreterError, RunResult, run_program
from .layout import Layout, layout_of, sizeof_ctype

__all__ = [
    "NULL",
    "UNDEFINED",
    "InstrumentedHeap",
    "MemObject",
    "Pointer",
    "RuntimeEvent",
    "RuntimeEventKind",
    "Interpreter",
    "InterpreterError",
    "RunResult",
    "run_program",
    "Layout",
    "layout_of",
    "sizeof_ctype",
]
