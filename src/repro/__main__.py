"""``python -m repro`` runs the pylclint command-line driver."""

import sys

from .driver.cli import main

if __name__ == "__main__":
    sys.exit(main())
