"""Fault containment: crash bundles and fatal-error records.

The checker is meant to run over large, imperfect batches of real-world
code, so a failure in one translation unit must never take down the
run (the paper's tool keeps going past bad declarations; a production
service has to keep going past anything). Two kinds of per-unit failure
are contained:

* **frontend fatals** — a :class:`LexError`/:class:`PreprocessError`
  (or a ``ParseError`` that escaped panic-mode recovery) makes the whole
  unit unparseable. The unit is replaced by an empty translation unit
  carrying a :class:`FatalError`, which surfaces as one ``parse-error``
  message; every other unit in the batch is still checked.
* **internal errors** — an unexpected exception inside preprocessing,
  parsing, or per-function analysis. The fault is reported as an
  ``internal-error`` message and the full context (phase, traceback,
  input digest) is written as a *crash bundle* under
  ``<cache-dir>/crashes/`` (default ``.pylclint-cache/crashes/``) so the
  failure can be reproduced and fixed offline.

Either way the affected unit is *degraded*: its result is never stored
in the incremental result cache, so it is re-checked from scratch on
every run until the input (or the checker) is fixed.

Bundle writing is best-effort and must never raise — a crash report
that cannot be written is dropped, not a second crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass

from ..frontend.source import Location
from ..obs.metrics import GLOBAL_METRICS

#: Where crash bundles go when no cache directory is configured.
DEFAULT_CRASH_DIR = os.path.join(".pylclint-cache", "crashes")

#: Bundles beyond this count are pruned oldest-first so a crashing
#: checker looping over a big tree cannot fill the disk.
MAX_CRASH_BUNDLES = 200

#: Schema stamp inside each bundle, for tooling that reads them.
CRASH_BUNDLE_FORMAT = 1


class RequestCancelled(BaseException):
    """The active :class:`CancelScope` asked this request to stop.

    Deliberately a ``BaseException``: the containment layers catch
    ``Exception`` to keep a batch alive past a buggy unit, but a
    cancelled request must *not* be contained — it has to unwind all the
    way out to whoever owns the deadline (the checking service), like
    ``KeyboardInterrupt`` does.
    """


class CancelScope:
    """A cooperative cancellation token for one checking request.

    The service arms a scope per request (deadline expiry, client
    disconnect, drain); the engine calls :func:`cancel_checkpoint`
    between translation units. Cancellation is therefore cooperative
    and unit-granular: a request stops at the next unit boundary, never
    mid-unit, so partial results are never written.

    Thread-safe by construction (a ``threading.Event``), because the
    service runs the synchronous engine on worker threads while the
    event loop owns the deadline timers.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str = "cancelled"

    def cancel(self, reason: str = "cancelled") -> None:
        self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def checkpoint(self) -> None:
        if self._event.is_set():
            GLOBAL_METRICS.inc("faults.cancelled_requests")
            raise RequestCancelled(self.reason)


_SCOPES = threading.local()


@contextmanager
def cancel_scope(scope: CancelScope):
    """Install *scope* as this thread's active cancellation token."""
    previous = getattr(_SCOPES, "active", None)
    _SCOPES.active = scope
    try:
        yield scope
    finally:
        _SCOPES.active = previous


def active_cancel_scope() -> CancelScope | None:
    return getattr(_SCOPES, "active", None)


def cancel_checkpoint() -> None:
    """Raise :class:`RequestCancelled` if this thread's request was
    cancelled; a no-op (one thread-local read) otherwise. The engine
    calls this at unit boundaries."""
    scope = getattr(_SCOPES, "active", None)
    if scope is not None:
        scope.checkpoint()


@dataclass(frozen=True)
class FatalError:
    """Why a whole translation unit could not be checked normally.

    ``kind`` is ``"frontend"`` for malformed input (lex/preprocess/parse
    gave up on the file) and ``"internal"`` for a contained checker bug.
    """

    kind: str  # "frontend" | "internal"
    location: Location
    description: str


def describe_exception(exc: BaseException) -> str:
    """One-line ``TypeName: message`` rendering of an exception."""
    text = str(exc).strip()
    name = type(exc).__name__
    return f"{name}: {text}" if text else name


def strip_location_prefix(exc: BaseException) -> str:
    """Frontend errors stringify as ``file:line: message``; return the
    bare message (the location travels separately)."""
    text = str(exc)
    location = getattr(exc, "location", None)
    prefix = f"{location}: " if location is not None else None
    if prefix and text.startswith(prefix):
        return text[len(prefix):]
    return text


def frontend_fatal(exc: BaseException, unit_name: str) -> FatalError:
    """Build the :class:`FatalError` for a lex/preprocess/parse giveup."""
    location = getattr(exc, "location", None)
    if not isinstance(location, Location):
        location = Location(unit_name, 1, 0)
    return FatalError(
        kind="frontend",
        location=location,
        description=strip_location_prefix(exc),
    )


def internal_fatal(
    exc: BaseException, unit_name: str, phase: str
) -> FatalError:
    return FatalError(
        kind="internal",
        location=Location(unit_name, 1, 0),
        description=(
            f"Internal error while {phase} this file: "
            f"{describe_exception(exc)} (file skipped)"
        ),
    )


def write_crash_bundle(
    crash_dir: str | None,
    *,
    phase: str,
    unit: str,
    exc: BaseException,
    function: str | None = None,
    source_text: str | None = None,
) -> str | None:
    """Persist a reproducible crash report; returns its path.

    Returns ``None`` when the bundle could not be written (read-only
    filesystem, bad directory, ...): crash reporting is best-effort and
    must never turn one contained fault into a fatal one.
    """
    directory = crash_dir or DEFAULT_CRASH_DIR
    digest = (
        hashlib.sha256(source_text.encode("utf-8", "replace")).hexdigest()
        if source_text is not None
        else None
    )
    payload = {
        "format": CRASH_BUNDLE_FORMAT,
        "timestamp": time.time(),
        "phase": phase,
        "unit": unit,
        "function": function,
        "exception": describe_exception(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        "source_digest": digest,
        "python": sys.version,
        "pid": os.getpid(),
    }
    try:
        os.makedirs(directory, exist_ok=True)
        stamp = time.strftime("%Y%m%d-%H%M%S")
        tag = hashlib.sha256(
            f"{unit}\0{function}\0{payload['traceback']}".encode(
                "utf-8", "replace"
            )
        ).hexdigest()[:12]
        path = os.path.join(directory, f"crash-{stamp}-{tag}.json")
        tmp = path + f".tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
        _prune_bundles(directory)
        GLOBAL_METRICS.inc("crashes.bundles.written")
        return path
    except OSError:
        GLOBAL_METRICS.inc("crashes.bundles.failed")
        return None


def _prune_bundles(directory: str) -> None:
    """Drop the oldest bundles once the cap is exceeded (best-effort)."""
    try:
        names = sorted(
            n for n in os.listdir(directory)
            if n.startswith("crash-") and n.endswith(".json")
        )
    except OSError:
        return
    for name in names[: max(0, len(names) - MAX_CRASH_BUNDLES)]:
        try:
            os.unlink(os.path.join(directory, name))
        except OSError:
            pass
