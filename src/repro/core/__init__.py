"""Public facade for the static checker."""

from .api import CheckResult, Checker, ParsedUnit, check_files, check_source

__all__ = ["CheckResult", "Checker", "ParsedUnit", "check_files", "check_source"]
