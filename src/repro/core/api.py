"""Public checking API (facade over the frontend and the analysis).

Typical use::

    from repro import check_source
    result = check_source(open("sample.c").read(), name="sample.c")
    for message in result.messages:
        print(message.render())

Multi-file programs are checked with :class:`Checker`, which parses every
unit, merges the interface information into one symbol table (the paper's
"libraries to store interface information"), and then checks each
function independently against that merged interface.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading

from dataclasses import dataclass, field, replace

from ..analysis.checker import CheckContext, FunctionChecker
from ..annotations.parse import AnnotationProblem
from ..flags.registry import DEFAULT_FLAGS, Flags
from ..frontend import cast as A
from ..frontend.lexer import LexError
from ..frontend.parser import ParseError, Parser
from ..frontend.preprocessor import PreprocessError, Preprocessor
from ..frontend.source import SourceManager
from .faults import (
    FatalError,
    cancel_checkpoint,
    frontend_fatal,
    internal_fatal,
    write_crash_bundle,
)
from ..frontend.symtab import SymbolTable
from ..frontend.tokens import Token
from ..messages.message import Message, MessageCode
from ..messages.reporter import Reporter
from ..messages.suppress import SuppressionTable
from ..obs.trace import NULL_TRACER
from ..stdlib.specs import (
    PRELUDE_COVERED_HEADERS,
    PRELUDE_DEFINES,
    PRELUDE_NAME,
    PRELUDE_TEXT,
    SYSTEM_HEADERS,
)

_PRELUDE_PARSE_CACHE: tuple | None = None
_PRELUDE_LOCK = threading.Lock()

#: On-disk layout version of the prelude snapshot payload. Bump when the
#: snapshot tuple shape changes; stale files become silent misses.
_PRELUDE_SNAPSHOT_VERSION = 1

_FRONTEND_CODE_DIGEST: str | None = None


def _frontend_code_digest() -> str:
    """Digest of the source code that determines a prelude parse result.

    Keys the prelude snapshot alongside the prelude text: any edit to the
    lexer, preprocessor, parser, AST, type, or annotation modules makes
    existing snapshots unreachable, so a pickled parse can never outlive
    the code that produced it. Computed once per process.
    """
    global _FRONTEND_CODE_DIGEST
    if _FRONTEND_CODE_DIGEST is None:
        from ..annotations import kinds, parse
        from ..frontend import (
            cast, ctypes, lexer, parser, preprocessor, source, tokens,
        )
        from ..stdlib import specs

        digest = hashlib.sha256()
        modules = (
            lexer, tokens, source, preprocessor, parser, cast, ctypes,
            kinds, parse, specs,
        )
        for module in modules:
            path = getattr(module, "__file__", None)
            try:
                with open(path, "rb") as handle:
                    digest.update(handle.read())
            except (OSError, TypeError):
                digest.update(repr(path).encode("utf-8"))
            digest.update(b"\x00")
        _FRONTEND_CODE_DIGEST = digest.hexdigest()
    return _FRONTEND_CODE_DIGEST


def prelude_snapshot_key() -> str:
    """Cache key of the parsed-prelude snapshot (text + code + version).

    Hashes the prelude inputs directly rather than via
    ``incremental.fingerprint.prelude_digest`` — importing that package
    here would drag the whole engine in (and cost more than the load it
    keys), and the snapshot's validity depends only on the prelude text
    and the frontend code, not on checker-semantics versioning.
    """
    digest = hashlib.sha256()
    update = digest.update
    update(f"prelude-snapshot-v{_PRELUDE_SNAPSHOT_VERSION}\x00".encode())
    update(PRELUDE_TEXT.encode("utf-8"))
    update(b"\x00")
    for name, value in sorted(PRELUDE_DEFINES.items()):
        update(f"{name}={value}\x00".encode("utf-8"))
    for name, text in sorted(SYSTEM_HEADERS.items()):
        update(f"{name}:{text}\x00".encode("utf-8"))
    update(_frontend_code_digest().encode("ascii"))
    return digest.hexdigest()


def _load_prelude_snapshot(snapshot_dir: str, notes: list[str]) -> tuple | None:
    """Corruption-tolerant snapshot load (mirrors the result cache).

    A missing file is a plain miss. A truncated, garbled, or shape-
    mismatched file is discarded so the slot is rewritten — and noted,
    so a recurring drop is diagnosable — never an error.
    """
    path = os.path.join(snapshot_dir, prelude_snapshot_key() + ".pkl")
    try:
        handle = open(path, "rb")
    except OSError:
        return None
    try:
        with handle:
            payload = pickle.load(handle)
        if (
            not isinstance(payload, tuple)
            or len(payload) != 3
            or payload[0] != _PRELUDE_SNAPSHOT_VERSION
        ):
            raise ValueError("unexpected prelude snapshot shape")
        return (payload[1], payload[2])
    except Exception:
        notes.append(
            f"dropped a corrupt or stale prelude snapshot under "
            f"{snapshot_dir}; reparsing the prelude"
        )
        try:
            os.unlink(path)
        except OSError:
            pass
        return None


def _write_prelude_snapshot(snapshot_dir: str, parsed: tuple) -> None:
    """Atomic snapshot write; failures are silent (the snapshot is only
    an accelerator — next process simply reparses)."""
    path = os.path.join(snapshot_dir, prelude_snapshot_key() + ".pkl")
    try:
        os.makedirs(snapshot_dir, exist_ok=True)
        # Drop snapshots for older prelude/code versions: only the
        # current key can ever be read again.
        for entry in os.listdir(snapshot_dir):
            if entry.endswith(".pkl") and entry != os.path.basename(path):
                try:
                    os.unlink(os.path.join(snapshot_dir, entry))
                except OSError:
                    pass
        payload = (_PRELUDE_SNAPSHOT_VERSION, parsed[0], parsed[1])
        fd, tmp = tempfile.mkstemp(
            dir=snapshot_dir, prefix=".tmp-", suffix="~"
        )
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle)
        os.replace(tmp, path)
    except OSError:
        pass


def _parse_prelude() -> tuple:
    manager = SourceManager()
    prelude_pp = Preprocessor(
        manager, defines=dict(PRELUDE_DEFINES), system_headers=SYSTEM_HEADERS
    )
    toks = prelude_pp.preprocess_text(PRELUDE_TEXT, PRELUDE_NAME)
    parser = Parser(toks, PRELUDE_NAME)
    unit = parser.parse_translation_unit()
    return (unit, parser.scope)


def _prelude_parsed() -> tuple:
    """Parse the standard-library prelude once per process.

    Returns ``(unit, file_scope)``: the prelude's translation unit (its
    declarations are merged into every symbol table) and the parser file
    scope holding its typedefs/tags, used to pre-seed user-unit parsers.

    Initialization is guarded by a lock so concurrent daemon requests and
    pool-worker initializers racing on a fresh process each see exactly
    one parse; the fast path reads the published cache without locking.
    """
    global _PRELUDE_PARSE_CACHE
    cached = _PRELUDE_PARSE_CACHE
    if cached is None:
        with _PRELUDE_LOCK:
            if _PRELUDE_PARSE_CACHE is None:
                _PRELUDE_PARSE_CACHE = _parse_prelude()
            cached = _PRELUDE_PARSE_CACHE
    return cached


def ensure_process_initialized(snapshot_dir: str | None = None) -> list[str]:
    """Warm per-process caches; safe to call from pool-worker initializers.

    With *snapshot_dir* (the engine passes ``<cache>/prelude``), the
    parsed prelude is loaded from a pickled snapshot keyed by the prelude
    text + frontend code digest — a one-time parse per machine instead of
    per process — and written back after a cold parse. Returns run notes
    (e.g. a dropped corrupt snapshot); an empty list on the happy paths.
    """
    global _PRELUDE_PARSE_CACHE
    notes: list[str] = []
    if _PRELUDE_PARSE_CACHE is not None or snapshot_dir is None:
        _prelude_parsed()
        return notes
    with _PRELUDE_LOCK:
        if _PRELUDE_PARSE_CACHE is None:
            loaded = _load_prelude_snapshot(snapshot_dir, notes)
            if loaded is None:
                loaded = _parse_prelude()
                _write_prelude_snapshot(snapshot_dir, loaded)
            _PRELUDE_PARSE_CACHE = loaded
    return notes


@dataclass
class ParsedUnit:
    unit: A.TranslationUnit
    controls: list[Token]
    problems: list[AnnotationProblem]
    enum_consts: dict[str, int]
    parse_errors: list = field(default_factory=list)
    #: Set when the frontend gave up on the whole file (unlexable input,
    #: a contained internal error, ...); ``unit`` is then empty.
    fatal_error: FatalError | None = None

    @property
    def degraded(self) -> bool:
        """True when any part of the unit could not be analyzed normally."""
        return bool(self.parse_errors) or self.fatal_error is not None


def failed_parsed_unit(name: str, fatal: FatalError) -> ParsedUnit:
    """The stand-in for a unit the frontend could not process at all."""
    unit = A.TranslationUnit(fatal.location, name=name, items=[])
    return ParsedUnit(
        unit=unit, controls=[], problems=[], enum_consts={},
        fatal_error=fatal,
    )


@dataclass
class UnitCheckOutput:
    """The outcome of checking one translation unit in isolation.

    Messages are already flag-filtered, suppression-filtered (against the
    unit's own control comments), and sorted. Outputs from several units
    merge into a program-level result with :func:`merge_unit_outputs`.

    ``degraded`` marks a result produced under fault containment (parse
    recovery, a skipped file, or a contained crash). Degraded results
    must never be cached as clean: the unit is re-checked on every run.
    ``internal_errors`` counts contained checker crashes, which drive the
    CLI's exit status 3.
    """

    messages: list[Message]
    suppressed: int = 0
    degraded: bool = False
    internal_errors: int = 0


def unit_interface(pu: "ParsedUnit") -> SymbolTable:
    """Extract the interface slice (signatures + globals) of one unit."""
    symtab = SymbolTable()
    symtab.add_unit(pu.unit)
    return symtab


_PRELUDE_SYMTAB_CACHE: SymbolTable | None = None


def _prelude_symtab() -> SymbolTable:
    """The prelude's symbol table, built once per process.

    Walking the prelude AST into a fresh table costs a few milliseconds
    per check; the declarations never change within a process, so the
    walk happens once and every run copies the result (signatures are
    replaced, never mutated, on merge, so sharing them is safe; global
    variables are merged in place, so they are copied per run).
    """
    global _PRELUDE_SYMTAB_CACHE
    cached = _PRELUDE_SYMTAB_CACHE
    if cached is None:
        prelude_unit, _ = _prelude_parsed()
        cached = SymbolTable()
        cached.add_unit(prelude_unit)
        _PRELUDE_SYMTAB_CACHE = cached
    return cached


def build_program_symtab(
    interfaces: list[SymbolTable],
    base_symtab: SymbolTable | None = None,
) -> SymbolTable:
    """Assemble the merged program symbol table the paper's modular
    checking assumes: prelude first, then loaded libraries, then each
    unit's interface slice in program order."""
    symtab = SymbolTable()
    template = _prelude_symtab()
    symtab.functions.update(template.functions)
    symtab.globals.update(
        (name, replace(gvar)) for name, gvar in template.globals.items()
    )
    if base_symtab is not None:
        from ..driver.library import merge_symtabs

        merge_symtabs(symtab, base_symtab)
    for interface in interfaces:
        symtab.merge_interface(interface)
    return symtab


def check_parsed_unit(
    pu: "ParsedUnit",
    symtab: SymbolTable,
    flags: Flags,
    enum_consts: dict[str, int] | None = None,
    crash_dir: str | None = None,
    tracer=NULL_TRACER,
) -> UnitCheckOutput:
    """Check one parsed unit against a merged interface.

    This is a pure function of its inputs (no module-global state beyond
    the immutable prelude parse), which is what makes per-unit results
    cacheable and lets pool workers check units independently. The
    *tracer* is measurement only — it never changes the output — and
    per-function spans are emitted only when a trace sink is attached
    (``tracer.emitting``), so the default path stays free.

    Analysis faults are contained per function: an unexpected exception
    while checking one function becomes an ``internal-error`` message
    plus a crash bundle under *crash_dir*, and the remaining functions
    of the unit are still checked.
    """
    reporter = Reporter(flags=flags)
    degraded = pu.degraded
    internal_errors = 0
    if pu.fatal_error is not None:
        fatal = pu.fatal_error
        if fatal.kind == "internal":
            internal_errors += 1
            reporter.report(
                MessageCode.INTERNAL_ERROR, fatal.location, fatal.description
            )
        else:
            reporter.report(
                MessageCode.PARSE_ERROR, fatal.location,
                f"Cannot parse this file: {fatal.description} "
                f"(file skipped)",
            )
    for problem in pu.problems:
        reporter.report(
            MessageCode.ANNOTATION_PROBLEM, problem.location,
            problem.description,
        )
    for error in pu.parse_errors:
        reporter.report(
            MessageCode.PARSE_ERROR, error.location,
            f"Parse error: {error.args[0].split(': ', 1)[-1]} "
            f"(skipped to the next declaration)",
        )
    ctx = CheckContext(
        symtab=symtab, reporter=reporter, flags=flags,
        enum_consts=dict(enum_consts or {}),
    )
    for fdef in pu.unit.functions():
        try:
            if tracer.emitting:
                with tracer.span(
                    "function", cat="function",
                    function=fdef.name, unit=pu.unit.name,
                ):
                    FunctionChecker(ctx, fdef).check()
            else:
                FunctionChecker(ctx, fdef).check()
        except Exception as exc:
            degraded = True
            internal_errors += 1
            write_crash_bundle(
                crash_dir, phase="check", unit=pu.unit.name,
                function=fdef.name, exc=exc,
            )
            # Only the exception *type* goes into the message: reprs can
            # embed object addresses, and message text must be identical
            # between serial and parallel runs. The full detail lives in
            # the crash bundle.
            reporter.report(
                MessageCode.INTERNAL_ERROR, fdef.location,
                f"Internal error ({type(exc).__name__}) while checking "
                f"function '{fdef.name}' (function skipped; rest of the "
                f"unit still checked)",
            )
    table = SuppressionTable.from_controls(pu.controls)
    reporter.apply_suppressions(table)
    return UnitCheckOutput(
        messages=reporter.sorted_messages(),
        suppressed=reporter.suppressed_count,
        degraded=degraded,
        internal_errors=internal_errors,
    )


def merge_unit_outputs(
    outputs: list[UnitCheckOutput],
) -> tuple[list[Message], int]:
    """Combine per-unit outputs into one sorted, deduplicated message list.

    Units sharing a header may each report the same header-located message
    (an annotation problem, say); the reporter deduplicates those within a
    run, so the merge deduplicates across units by the same key.
    """
    seen: set[tuple] = set()
    merged: list[Message] = []
    suppressed = 0
    for out in outputs:
        suppressed += out.suppressed
        for msg in out.messages:
            key = (msg.code, msg.location, msg.text)
            if key in seen:
                continue
            seen.add(key)
            merged.append(msg)
    return sorted(merged, key=Message.sort_key), suppressed


@dataclass
class CheckResult:
    """The outcome of a checking run.

    ``degraded_units`` names the translation units whose results were
    produced under fault containment (parse recovery, skipped files,
    contained crashes); ``internal_errors`` counts contained checker
    crashes across the run (nonzero drives CLI exit status 3).
    """

    messages: list[Message]
    suppressed: int = 0
    units: list[A.TranslationUnit] = field(default_factory=list)
    symtab: SymbolTable | None = None
    degraded_units: list[str] = field(default_factory=list)
    internal_errors: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_units)

    def render(self) -> str:
        parts = [m.render() for m in self.messages]
        parts.append(f"\n{len(self.messages)} code warning(s)")
        return "\n".join(parts)

    def codes(self) -> list[MessageCode]:
        return [m.code for m in self.messages]

    def by_code(self) -> dict[MessageCode, list[Message]]:
        out: dict[MessageCode, list[Message]] = {}
        for msg in self.messages:
            out.setdefault(msg.code, []).append(msg)
        return out

    def error_classes(self) -> dict[str, list[Message]]:
        """Messages grouped by the dynamic memory-error class they evidence.

        Codes with no dynamic counterpart (parse errors, style checks) are
        omitted; this is the static side of the difftest verdict contract
        (see :data:`repro.messages.message.MEMORY_ERROR_CLASSES`).
        """
        out: dict[str, list[Message]] = {}
        for msg in self.messages:
            cls = msg.code.error_class
            if cls is not None:
                out.setdefault(cls, []).append(msg)
        return out

    def __len__(self) -> int:
        return len(self.messages)


class Checker:
    """Checks one or more C source files LCLint-style."""

    def __init__(
        self,
        flags: Flags | None = None,
        sources: SourceManager | None = None,
        defines: dict[str, str] | None = None,
        crash_dir: str | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.flags = flags or DEFAULT_FLAGS
        self.sources = sources or SourceManager()
        self.defines = dict(PRELUDE_DEFINES)
        self.defines.update(defines or {})
        self.crash_dir = crash_dir
        self.tracer = tracer
        self.base_symtab: SymbolTable | None = None

    # -- interface libraries (paper section 7: modular checking) -----------

    def load_library(self, path: str) -> None:
        """Merge interface information from a saved library file."""
        from ..driver.library import load_library, merge_symtabs

        loaded = load_library(path)
        if self.base_symtab is None:
            self.base_symtab = SymbolTable()
        merge_symtabs(self.base_symtab, loaded)

    def save_library(self, result: "CheckResult", path: str) -> None:
        from ..driver.library import save_library

        assert result.symtab is not None
        save_library(result.symtab, path)

    # -- parsing ----------------------------------------------------------

    def parse_unit(self, text: str, name: str) -> ParsedUnit:
        """Parse one unit, containing every frontend failure.

        Malformed input (a :class:`LexError`, :class:`PreprocessError`,
        or a :class:`ParseError` that escaped panic-mode recovery) and
        unexpected internal exceptions both yield a *failed* unit — an
        empty translation unit carrying a :class:`FatalError` — instead
        of aborting the batch. ``check_parsed_unit`` turns the record
        into a single parse-error / internal-error message.
        """
        try:
            return self._parse_unit_raw(text, name)
        except (LexError, PreprocessError, ParseError) as exc:
            return failed_parsed_unit(name, frontend_fatal(exc, name))
        except Exception as exc:
            write_crash_bundle(
                self.crash_dir, phase="parse", unit=name, exc=exc,
                source_text=text,
            )
            return failed_parsed_unit(
                name, internal_fatal(exc, name, "parsing")
            )

    def _parse_unit_raw(self, text: str, name: str) -> ParsedUnit:
        pp = Preprocessor(
            self.sources, defines=dict(self.defines),
            system_headers=SYSTEM_HEADERS,
            prelude_covered=PRELUDE_COVERED_HEADERS,
        )
        _, prelude_scope = _prelude_parsed()
        toks = pp.preprocess_text(text, name)
        # .lcl files are LCL interface specifications: annotations appear
        # as bare words before types (paper section 4).
        parser = Parser(toks, name, lcl_mode=name.endswith(".lcl"),
                        preseed=prelude_scope)
        unit = parser.parse_translation_unit()
        return ParsedUnit(
            unit=unit,
            controls=parser.controls,
            problems=parser.problems,
            enum_consts=dict(parser.scope.enum_consts),
            parse_errors=list(parser.parse_errors),
        )

    # -- checking -------------------------------------------------------------

    def check_units(self, parsed: list[ParsedUnit]) -> CheckResult:
        with self.tracer.span("batch", cat="batch", units=len(parsed)):
            symtab = build_program_symtab(
                [unit_interface(pu) for pu in parsed], self.base_symtab
            )
            enum_consts: dict[str, int] = {}
            for pu in parsed:
                enum_consts.update(pu.enum_consts)

            outputs = []
            for pu in parsed:
                cancel_checkpoint()  # requests stop at unit boundaries
                with self.tracer.span("unit", cat="unit", unit=pu.unit.name):
                    outputs.append(check_parsed_unit(
                        pu, symtab, self.flags, enum_consts,
                        crash_dir=self.crash_dir, tracer=self.tracer,
                    ))
        messages, suppressed = merge_unit_outputs(outputs)

        return CheckResult(
            messages=messages,
            suppressed=suppressed,
            units=[pu.unit for pu in parsed],
            symtab=symtab,
            degraded_units=[
                pu.unit.name
                for pu, out in zip(parsed, outputs)
                if out.degraded
            ],
            internal_errors=sum(out.internal_errors for out in outputs),
        )

    def check_sources(self, files: dict[str, str]) -> CheckResult:
        """Check a set of named C sources as one program.

        Header files (``.h``) are registered for ``#include`` resolution;
        every other entry is parsed and checked as a translation unit.
        """
        units: list[ParsedUnit] = []
        for name, text in files.items():
            if name.endswith(".h"):
                self.sources.add(name, text)
        for name, text in files.items():
            if not name.endswith(".h"):
                cancel_checkpoint()
                units.append(self.parse_unit(text, name))
        return self.check_units(units)

    def check_files(self, paths: list[str]) -> CheckResult:
        files: dict[str, str] = {}
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                files[path] = handle.read()
        return self.check_sources(files)


def check_source(
    text: str,
    name: str = "<string>",
    flags: Flags | None = None,
    extra_sources: dict[str, str] | None = None,
    crash_dir: str | None = None,
) -> CheckResult:
    """Check a single C source string; the common entry point."""
    checker = Checker(flags=flags, crash_dir=crash_dir)
    for header, contents in (extra_sources or {}).items():
        checker.sources.add(header, contents)
    return checker.check_units([checker.parse_unit(text, name)])


def check_files(paths: list[str], flags: Flags | None = None) -> CheckResult:
    return Checker(flags=flags).check_files(paths)
