"""Interface libraries for modular checking (paper section 7).

"By using libraries to store interface information, a representative
5000 line module is checked in under 10 seconds."

A library file stores the interface slice of a symbol table — function
signatures with their annotations and annotated global declarations —
so that re-checking one module does not require re-parsing the rest of
the program. The on-disk format is a versioned pickle (LCLint's ``.lcd``
files were similarly a binary interface dump).
"""

from __future__ import annotations

import pickle

from ..frontend.symtab import SymbolTable

LIBRARY_MAGIC = b"PYLCLINT-LCD"
LIBRARY_VERSION = 1


class LibraryError(Exception):
    pass


def save_library(symtab: SymbolTable, path: str) -> None:
    """Dump a symbol table's interface information to *path*."""
    payload = {
        "version": LIBRARY_VERSION,
        "functions": symtab.functions,
        "globals": symtab.globals,
    }
    with open(path, "wb") as handle:
        handle.write(LIBRARY_MAGIC)
        pickle.dump(payload, handle)


def load_library(path: str) -> SymbolTable:
    """Load an interface library saved by :func:`save_library`."""
    with open(path, "rb") as handle:
        magic = handle.read(len(LIBRARY_MAGIC))
        if magic != LIBRARY_MAGIC:
            raise LibraryError(f"{path}: not a pylclint library file")
        payload = pickle.load(handle)
    if payload.get("version") != LIBRARY_VERSION:
        raise LibraryError(
            f"{path}: unsupported library version {payload.get('version')!r}"
        )
    symtab = SymbolTable()
    symtab.functions = payload["functions"]
    symtab.globals = payload["globals"]
    return symtab


def merge_symtabs(base: SymbolTable, extra: SymbolTable) -> None:
    """Merge *extra*'s interface info into *base* (definitions win)."""
    for name, sig in extra.functions.items():
        existing = base.functions.get(name)
        if existing is None or (sig.has_definition and not existing.has_definition):
            base.functions[name] = sig
    for name, gvar in extra.globals.items():
        if name not in base.globals:
            base.globals[name] = gvar
