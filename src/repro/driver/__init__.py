"""Multi-file checking driver: CLI and interface libraries."""

from .cli import main, run
from .library import LibraryError, load_library, merge_symtabs, save_library

__all__ = ["main", "run", "LibraryError", "load_library", "merge_symtabs", "save_library"]
