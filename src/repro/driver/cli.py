"""Command-line driver, usable as ``pylclint`` or ``python -m repro.driver.cli``.

Usage follows LCLint's conventions::

    pylclint [options] file.c [file2.c ...]

    -flagname / +flagname   turn a named check or behaviour off / on
                            (e.g. -allimponly, +gcmode; see -flags)
    -dump lib.lcd           write an interface library after checking
    -load lib.lcd           load interface libraries before checking
    -dot function           print the control-flow graph in DOT form
    -trace function         print the per-point dataflow trace (section 5)
    -stats                  print checking statistics
    --profile               print a per-phase timing table
                            (lex / preprocess / parse / analyze,
                            cold vs warm units)
    -flags                  list all flags with their defaults
    -quiet                  suppress the summary line

Observability (see docs/internals.md section 8):

    --trace-out FILE        write nested spans (batch > unit > phase >
                            function) for this run; messages and exit
                            status are unchanged
    --trace-format FMT      trace file format: jsonl (default; one JSON
                            object per span) or chrome (a Chrome
                            trace-event file for about:tracing/Perfetto)
    --metrics-out FILE      write a JSON dump of the metrics registry
                            (cache traffic, dropped entries, degraded
                            units, scheduler fallbacks) after the run

Differential fault injection (see docs/internals.md):

    difftest [...]          as first argument: run the static-vs-dynamic
                            fault-injection campaign, or --replay a
                            persisted discrepancy (repro difftest --help)

Incremental & parallel checking (see docs/internals.md):

    --jobs N                check translation units on N worker processes
    --cache                 cache per-unit results under .pylclint-cache/
    --cache-dir DIR         cache per-unit results under DIR
    --no-cache              disable the result cache
    --shard-strategy S      how units are batched across workers:
                            interface (default; interface-dependency
                            clusters travel together), size (best
                            balance), or round-robin
    --cache-server ADDR     consult a shared cache service on local
                            misses (HOST:PORT or unix:PATH; start one
                            with python -m repro.incremental.cacheserver)

Checking service (see docs/internals.md section 9):

    --serve                 run the async multi-client checking service
                            (cache on by default; combine with --addr,
                            --max-inflight, --request-timeout, --jobs,
                            --cache-dir, --no-cache)
    --addr ADDR             listen address: HOST:PORT for TCP on
                            localhost, or unix:PATH for a UNIX socket;
                            repeatable (default 127.0.0.1:0, port
                            printed in the ready line)
    --max-inflight N        bound on admitted (queued + running)
                            requests; beyond it clients get a busy
                            reply with retry_after_ms (default 64)
    --request-timeout S     default per-request deadline in seconds
                            (a request's own "timeout" field overrides)
    --daemon                legacy single-client stdin/stdout server
                            (kept as a compatibility shim over the same
                            protocol; prefer --serve)

Header files named on the command line are registered for ``#include``
resolution; every other file is checked as a translation unit.

Exit-code contract (stable; build systems may rely on it):

    0   clean — no warnings
    1   warnings were emitted (including parse-error messages for
        malformed inputs; the rest of the batch is still checked)
    2   usage or input error (unknown flag, unreadable file, ...)
    3   an internal checker error was contained — the run completed,
        a crash bundle was written under the cache's ``crashes/``
        directory, and all other results are valid
"""

from __future__ import annotations

import sys
import threading
import time

from ..analysis.cfg import build_cfg
from ..flags.registry import FLAG_REGISTRY, Flags, UnknownFlag
from ..core.api import Checker, CheckResult

USAGE = __doc__ or ""

#: Exit statuses of the contract above.
EXIT_CLEAN = 0
EXIT_WARNINGS = 1
EXIT_USAGE = 2
EXIT_INTERNAL_CONTAINED = 3

#: Engine statistics of the most recent incremental run on *this
#: thread* (None when the classic one-shot path ran). The daemon shim
#: and the checking service read this — as ``cli.LAST_RUN_STATS``, via
#: the module ``__getattr__`` below — to report per-request cache
#: traffic without changing run()'s (status, output) contract.
#: Thread-local because the service runs requests on worker threads.
_RUN_STATS = threading.local()


def __getattr__(name: str):
    if name == "LAST_RUN_STATS":
        return getattr(_RUN_STATS, "value", None)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class CliError(Exception):
    pass


def _read_source_files(paths: list[str]) -> dict[str, str]:
    """Read the named files, converting IO and encoding failures into
    clean :class:`CliError`\\ s (a missing or non-UTF-8 input must never
    surface as a raw traceback)."""
    files: dict[str, str] = {}
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                files[path] = handle.read()
        except OSError as exc:
            raise CliError(f"cannot read {path}: {exc.strerror or exc}") from exc
        except UnicodeDecodeError as exc:
            raise CliError(
                f"cannot read {path}: not a UTF-8 text file ({exc.reason} "
                f"at byte {exc.start})"
            ) from exc
    return files


def _print_flags() -> str:
    lines = ["flag defaults:"]
    by_category: dict[str, list] = {}
    for info in FLAG_REGISTRY.values():
        by_category.setdefault(info.category, []).append(info)
    for category in sorted(by_category):
        lines.append(f"  [{category}]")
        for info in sorted(by_category[category], key=lambda i: i.name):
            default = "+" if info.default else "-"
            lines.append(f"    {default}{info.name:<16} {info.description}")
    return "\n".join(lines)


def run(argv: list[str], cache=None, jobs: int | None = None) -> tuple[int, str]:
    """Run the driver; returns (exit_status, output_text).

    *cache* and *jobs* let the daemon inject its persistent
    :class:`~repro.incremental.cache.ResultCache` and worker count; the
    command line can still override both per request.
    """
    _RUN_STATS.value = None
    run_t0 = time.perf_counter()
    paths: list[str] = []
    flag_args: list[str] = []
    dump_path: str | None = None
    load_paths: list[str] = []
    dot_function: str | None = None
    trace_function_name: str | None = None
    want_stats = False
    want_profile = False
    quiet = False
    cache_dir: str | None = None
    no_cache = False
    shard_strategy = "interface"
    cache_server: str | None = None
    trace_out: str | None = None
    trace_format = "jsonl"
    metrics_out: str | None = None

    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in ("-h", "--help", "-help"):
            return 0, USAGE
        if arg == "-flags":
            return 0, _print_flags()
        if arg in ("--daemon", "-daemon"):
            raise CliError(
                "--daemon starts a server session; invoke it through the "
                "pylclint entry point or python -m repro.incremental.server"
            )
        if arg in ("--serve", "-serve"):
            raise CliError(
                "--serve starts the checking service; invoke it through "
                "the pylclint entry point or python -m repro.service"
            )
        if arg == "-dump":
            i += 1
            if i >= len(argv):
                raise CliError("-dump requires a file argument")
            dump_path = argv[i]
        elif arg == "-load":
            i += 1
            if i >= len(argv):
                raise CliError("-load requires a file argument")
            load_paths.append(argv[i])
        elif arg == "-dot":
            i += 1
            if i >= len(argv):
                raise CliError("-dot requires a function name")
            dot_function = argv[i]
        elif arg == "-trace":
            i += 1
            if i >= len(argv):
                raise CliError("-trace requires a function name")
            trace_function_name = argv[i]
        elif arg in ("--jobs", "-jobs", "-j"):
            i += 1
            if i >= len(argv):
                raise CliError("--jobs requires a worker count")
            jobs = _parse_jobs(argv[i])
        elif arg.startswith("--jobs="):
            jobs = _parse_jobs(arg.split("=", 1)[1])
        elif arg in ("--cache-dir", "-cache-dir"):
            i += 1
            if i >= len(argv):
                raise CliError("--cache-dir requires a directory")
            cache_dir = argv[i]
        elif arg.startswith("--cache-dir="):
            cache_dir = arg.split("=", 1)[1]
        elif arg in ("--cache", "-cache"):
            from ..incremental.cache import DEFAULT_CACHE_DIR

            cache_dir = DEFAULT_CACHE_DIR
        elif arg in ("--no-cache", "-no-cache"):
            no_cache = True
        elif arg in ("--shard-strategy", "-shard-strategy"):
            i += 1
            if i >= len(argv):
                raise CliError("--shard-strategy requires a strategy name")
            shard_strategy = argv[i]
        elif arg.startswith("--shard-strategy="):
            shard_strategy = arg.split("=", 1)[1]
        elif arg in ("--cache-server", "-cache-server"):
            i += 1
            if i >= len(argv):
                raise CliError("--cache-server requires an address")
            cache_server = argv[i]
        elif arg.startswith("--cache-server="):
            cache_server = arg.split("=", 1)[1]
        elif arg in ("--trace-out", "-trace-out"):
            i += 1
            if i >= len(argv):
                raise CliError("--trace-out requires a file argument")
            trace_out = argv[i]
        elif arg.startswith("--trace-out="):
            trace_out = arg.split("=", 1)[1]
        elif arg in ("--trace-format", "-trace-format"):
            i += 1
            if i >= len(argv):
                raise CliError("--trace-format requires a format name")
            trace_format = argv[i]
        elif arg.startswith("--trace-format="):
            trace_format = arg.split("=", 1)[1]
        elif arg in ("--metrics-out", "-metrics-out"):
            i += 1
            if i >= len(argv):
                raise CliError("--metrics-out requires a file argument")
            metrics_out = argv[i]
        elif arg.startswith("--metrics-out="):
            metrics_out = arg.split("=", 1)[1]
        elif arg == "-stats":
            want_stats = True
        elif arg in ("--profile", "-profile"):
            want_profile = True
        elif arg == "-quiet":
            quiet = True
        elif arg.startswith(("-", "+")) and len(arg) > 1:
            flag_args.append(arg)
        else:
            paths.append(arg)
        i += 1

    if not paths:
        raise CliError("no input files (try --help)")

    try:
        flags = Flags.from_args(flag_args)
    except UnknownFlag as exc:
        raise CliError(str(exc)) from exc

    jobs = jobs or 1
    if no_cache:
        cache = None
    elif cache_dir is not None:
        from ..incremental.cache import ResultCache

        cache = ResultCache(cache_dir)

    from ..incremental.shard import STRATEGIES

    if shard_strategy not in STRATEGIES:
        raise CliError(
            f"unknown shard strategy {shard_strategy!r} "
            f"(expected one of {', '.join(STRATEGIES)})"
        )

    remote = None
    if cache_server is not None:
        from ..incremental.cacheserver import CacheClient

        try:
            remote = CacheClient(cache_server)
        except ValueError as exc:
            raise CliError(str(exc)) from exc

    if trace_format not in ("jsonl", "chrome"):
        raise CliError(
            f"unknown trace format {trace_format!r} "
            f"(expected jsonl or chrome)"
        )

    files = _read_source_files(paths)
    out: list[str] = []
    stats = None

    from .library import LibraryError

    obs = None
    if trace_out is not None or metrics_out is not None:
        from ..obs.context import Observability

        try:
            obs = Observability.from_options(
                trace_out, trace_format, metrics_out
            )
        except OSError as exc:
            raise CliError(str(exc)) from exc

    try:
        try:
            # --profile and observability need the instrumented engine
            # even without a cache.
            if cache is not None or jobs > 1 or want_profile \
                    or obs is not None or remote is not None:
                from ..incremental.engine import IncrementalChecker

                checker = IncrementalChecker(
                    flags=flags,
                    cache=cache,
                    jobs=jobs,
                    keep_units=(
                        dot_function is not None
                        or trace_function_name is not None
                    ),
                    tracer=obs.tracer if obs is not None else None,
                    metrics=obs.metrics if obs is not None else None,
                    remote=remote,
                    shard_strategy=shard_strategy,
                )
                for lib in load_paths:
                    checker.load_library(lib)
                prologue_s = time.perf_counter() - run_t0
                result = checker.check_sources(files)
                stats = checker.stats
                stats.prologue_s = prologue_s
                _RUN_STATS.value = stats
                for note in stats.notes:
                    out.append(f"pylclint: warning: {note}")
            else:
                checker = Checker(flags=flags)
                for lib in load_paths:
                    checker.load_library(lib)
                result = checker.check_sources(files)
        except LibraryError as exc:
            raise CliError(str(exc)) from exc
        except OSError as exc:
            raise CliError(str(exc)) from exc
    finally:
        if remote is not None:
            remote.close()
        # Flush the trace file and metrics dump even when the run died:
        # a partial trace of a failed run is exactly what gets debugged.
        if obs is not None:
            obs.finish()

    render_t0 = time.perf_counter()
    for message in result.messages:
        out.append(message.render())

    if dot_function is not None:
        out.append(_dot_for(result, dot_function))

    if trace_function_name is not None:
        out.append(_trace_for(checker, result, trace_function_name))

    if want_stats:
        out.append(_stats_for(result))
        if stats is not None:
            out.append(stats.render())

    if want_profile and stats is not None:
        stats.render_s = time.perf_counter() - render_t0
        out.append(stats.render_profile())

    if result.internal_errors and not quiet:
        out.append(
            f"pylclint: {result.internal_errors} internal error(s) contained "
            f"(crash bundle(s) written; run completed)"
        )

    if not quiet:
        out.append(f"{len(result.messages)} code warning(s)")

    if dump_path is not None:
        from .library import save_library

        assert result.symtab is not None
        save_library(result.symtab, dump_path)
        if not quiet:
            out.append(f"interface library written to {dump_path}")

    return _exit_status(result), "\n".join(out)


def _exit_status(result: CheckResult) -> int:
    """Map a completed run onto the documented exit-code contract."""
    if result.internal_errors:
        return EXIT_INTERNAL_CONTAINED
    if result.messages:
        return EXIT_WARNINGS
    return EXIT_CLEAN


def _parse_jobs(value: str) -> int:
    try:
        jobs = int(value)
    except ValueError:
        raise CliError(f"--jobs expects an integer, got {value!r}") from None
    if jobs < 1:
        raise CliError("--jobs expects a count >= 1")
    return jobs


def _trace_for(checker: Checker, result: CheckResult, name: str) -> str:
    from ..analysis.checker import CheckContext
    from ..analysis.engine import trace_function
    from ..messages.reporter import Reporter

    for unit in result.units:
        for fdef in unit.functions():
            if fdef.name == name:
                ctx = CheckContext(
                    symtab=result.symtab,
                    reporter=Reporter(flags=checker.flags),
                    flags=checker.flags,
                )
                trace = trace_function(ctx, fdef)
                return "\n\n".join(point.render() for point in trace)
    raise CliError(f"no function named {name!r} in the checked files")


def _dot_for(result: CheckResult, name: str) -> str:
    for unit in result.units:
        for fdef in unit.functions():
            if fdef.name == name:
                return build_cfg(fdef).to_dot()
    raise CliError(f"no function named {name!r} in the checked files")


def _stats_for(result: CheckResult) -> str:
    functions = sum(len(u.functions()) for u in result.units)
    lines = ["statistics:"]
    lines.append(f"  translation units: {len(result.units)}")
    lines.append(f"  functions checked: {functions}")
    lines.append(f"  messages:          {len(result.messages)}")
    lines.append(f"  suppressed:        {result.suppressed}")
    by_code: dict[str, int] = {}
    for message in result.messages:
        by_code[message.code.slug] = by_code.get(message.code.slug, 0) + 1
    for slug in sorted(by_code):
        lines.append(f"    {slug:<20} {by_code[slug]}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "difftest":
        from ..difftest.cli import main as difftest_main

        return difftest_main(args[1:])
    if "--serve" in args or "-serve" in args:
        from ..service.server import run_service

        return run_service(
            [a for a in args if a not in ("--serve", "-serve")]
        )
    if "--daemon" in args or "-daemon" in args:
        from ..incremental.server import run_daemon

        return run_daemon(
            [a for a in args if a not in ("--daemon", "-daemon")]
        )
    try:
        status, output = run(args)
    except CliError as exc:
        print(f"pylclint: {exc}", file=sys.stderr)
        return 2
    if output:
        print(output)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
